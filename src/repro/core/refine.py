"""Pluggable refine-phase execution engines (Algorithm 2, lines 2-9).

The refine phase selects the top-k of the filter phase's k' candidates
using only DCE ``DistanceComp`` outcomes.  The paper analyses it as
``O(d k' log k)`` comparisons per query — and the straightforward
implementation pays a full interpreter round trip into
:func:`repro.core.dce.distance_comp` for every one of them, which is
what dominated the server's wall clock before this module existed.

Two engines implement the same contract behind the
:class:`RefineEngine` protocol:

* :class:`HeapRefineEngine` (``"heap"``) — the oracle-faithful
  reference: a k-bounded :class:`~repro.hnsw.heap.ComparisonMaxHeap`
  whose every comparison is one scalar ``DistanceComp`` call, exactly
  as the paper's server would evaluate it.  ``comparisons`` counts real
  oracle invocations.
* :class:`VectorizedRefineEngine` (``"vectorized"``, the default) —
  gathers the candidates' ``C_DCE`` rows once into contiguous role
  matrices (the same algebraic regrouping
  :func:`repro.core.dce.distance_comp_many` batches on), then replays
  the exact comparison-heap algorithm, answering each run of
  reject-against-the-current-top decisions with **one** batched
  pivot-vs-candidates sign kernel and the heap-maintenance comparisons
  with scalar products over the precomputed operands.  The replay makes
  the returned ids — order included — bit-identical to the heap engine
  (property-tested in ``tests/strategies/test_refine_properties.py``),
  and its decision count is reported in ``comparisons`` as the
  equivalent-oracle-call estimate.  With the filter handing candidates
  over nearest-first (the serving path), the whole post-fill tail is a
  single BLAS matvec (``benchmarks/bench_refine_engines.py`` records
  ≥3x over the heap engine at serving-path sizes).

Both engines consume the candidate ids as the ``np.int64`` array the
filter phase produces — no per-element boxing into Python ints.

Engines are looked up by name through :func:`get_refine_engine`; the
knob threads through :class:`~repro.core.roles.CloudServer`,
:class:`~repro.core.scheme.PPANNS`, ``repro.core.search.execute_batch``
and the CLI's ``--refine-engine`` flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.dce import DCEEncryptedDatabase, DCETrapdoor, distance_comp
from repro.core.errors import (
    DimensionMismatchError,
    KeyMismatchError,
    ParameterError,
)
from repro.hnsw.heap import ComparisonMaxHeap

__all__ = [
    "DEFAULT_REFINE_ENGINE",
    "REFINE_ENGINES",
    "RefineEngine",
    "RefineOutcome",
    "HeapRefineEngine",
    "VectorizedRefineEngine",
    "available_refine_engines",
    "get_refine_engine",
]


@dataclass(frozen=True)
class RefineOutcome:
    """What a refine engine returns for one query.

    Attributes
    ----------
    ids:
        The selected top-k candidate ids (``np.int64``), in the heap
        order both engines share.
    comparisons:
        Comparison-oracle decisions taken.  For the heap engine these
        are real ``DistanceComp`` calls; for the vectorized engine the
        same count is the equivalent-oracle-call estimate (the batched
        kernel answered them all up front).
    kernel_seconds:
        Wall clock spent inside batched numeric kernels (candidate
        gather + batched comparison scans).  Zero for the scalar heap
        engine.
    """

    ids: np.ndarray
    comparisons: int
    kernel_seconds: float = 0.0


@runtime_checkable
class RefineEngine(Protocol):
    """The refine-phase contract: comparison-only top-k over candidates."""

    name: str

    def refine(
        self,
        dce: DCEEncryptedDatabase,
        trapdoor: DCETrapdoor,
        candidate_ids: np.ndarray,
        k: int,
    ) -> RefineOutcome:
        """Select the top-``k`` of ``candidate_ids`` by DCE comparisons."""
        ...


def _as_id_array(candidate_ids: np.ndarray) -> np.ndarray:
    """The candidate ids as a 1-D ``int64`` array (no Python-int boxing)."""
    ids = np.asarray(candidate_ids, dtype=np.int64)
    if ids.ndim != 1:
        raise ParameterError(
            f"candidate ids must be a 1-D array, got shape {ids.shape}"
        )
    return ids


class HeapRefineEngine:
    """The oracle-faithful reference: one ``DistanceComp`` per decision.

    Every heap comparison is a scalar call into
    :func:`repro.core.dce.distance_comp` — exactly the access pattern
    the paper's server performs, which keeps its ``comparisons`` count a
    ground-truth oracle-call tally for the cost-model benchmarks.
    """

    name = "heap"

    def refine(
        self,
        dce: DCEEncryptedDatabase,
        trapdoor: DCETrapdoor,
        candidate_ids: np.ndarray,
        k: int,
    ) -> RefineOutcome:
        """Algorithm 2 lines 2-9, comparison by comparison."""
        ids = _as_id_array(candidate_ids)

        def is_farther(a: np.int64, b: np.int64) -> bool:
            return distance_comp(dce[a], dce[b], trapdoor) >= 0.0

        heap = ComparisonMaxHeap(k, is_farther)
        for candidate in ids:
            heap.offer(candidate)
        return RefineOutcome(
            ids=np.array(heap.items(), dtype=np.int64),
            comparisons=heap.oracle_calls,
        )


class VectorizedRefineEngine:
    """Batched pivot-vs-candidate comparisons, heap-faithful selection.

    The engine gathers the candidates' two *p*-role ``C_DCE`` rows once
    into one flat ``(m, 2(2d+16))`` matrix, so a pivot-vs-candidates
    batch is a single elementwise product with the pivot's *o*-role
    rows and one matvec against the doubled trapdoor ``[t, -t]`` — the
    same algebraic regrouping
    :func:`repro.core.dce.distance_comp_many` batches on, with no
    per-comparison ciphertext objects.

    It then replays Algorithm 2's heap **exactly**, but exploits its
    access pattern: once the heap is full, every candidate is first
    judged against the current heap top, and the top only changes when
    a candidate is accepted.  All consecutive rejections against one
    top are therefore a single batched *pivot-vs-candidates* sign
    kernel — one BLAS matvec per heap change instead of one interpreter
    round trip per candidate.  With the filter handing candidates over
    nearest-first (the serving path), the k nearest fill the heap first
    and the entire tail collapses into one matvec.  The remaining heap
    bookkeeping (fill-phase sift-ups, post-accept sift-downs) evaluates
    the identical scalar products, so the returned ids — order included
    — are bit-identical to :class:`HeapRefineEngine` whenever batched
    and scalar kernels agree on every comparison sign, which they do
    except for floating-point knife edges far below DCE's own
    encryption noise (property-tested, ties included).

    ``comparisons`` counts exactly the decisions the serial heap would
    have made (scanned rejections + heap maintenance) — the
    equivalent-oracle-call estimate.
    """

    name = "vectorized"

    #: Suspicion threshold for batched reductions, as a multiple of the
    #: per-row Cauchy-Schwarz bound ``||combined_row|| * ||t||`` (an
    #: upper bound on ``sum_j |combined_j * t_j|``).  Reordering a
    #: D-term float64 summation moves the result by at most about
    #: ``2 D eps`` of that bound (~2.4e-13 at D = 2d+16); entries within
    #: the far-larger threshold are re-reduced with the scalar oracle's
    #: exact ``ddot``, so a batched sign can never silently differ.
    _SUSPICION = 1e-9

    def refine(
        self,
        dce: DCEEncryptedDatabase,
        trapdoor: DCETrapdoor,
        candidate_ids: np.ndarray,
        k: int,
    ) -> RefineOutcome:
        """Algorithm 2 lines 2-9 with batched rejection scans."""
        ids = _as_id_array(candidate_ids)
        m = int(ids.shape[0])
        if m == 0:
            # Parity with the heap engine: an empty refine performs no
            # comparisons, so it cannot observe a key mismatch either
            # (the protocol layer key-checks every request up front).
            return RefineOutcome(ids=ids, comparisons=0)
        components = dce.components
        width = int(components.shape[2])
        vector = trapdoor.vector
        if m >= 2:
            # The scalar engine only observes a bad trapdoor on its
            # first comparison, and with >= 2 candidates at least one
            # comparison always happens; with fewer it performs none,
            # so neither engine raises then.
            if trapdoor.key_id != dce.key_id:
                raise KeyMismatchError(
                    "ciphertexts and trapdoor come from different keys"
                )
            if vector.shape[0] != width:
                raise DimensionMismatchError(
                    int(vector.shape[0]), width, what="DCE ciphertext"
                )
        kernel_start = time.perf_counter()
        # One contiguous gather of both p-role rows per candidate, laid
        # out flat as (m, 2 * width) so each scan batch is a single
        # elementwise product plus one matvec.  The o-role rows are only
        # ever needed for items that reach the heap (~k + accepts of
        # them), and those are zero-copy views into C_DCE.
        p_rows = components[ids, 2:4].reshape(m, 2 * width)
        doubled = np.concatenate([vector, -vector])
        doubled_norm = float(np.sqrt(doubled @ doubled))
        # Per-candidate magnitude for the reduction-error bounds below.
        p_norms = np.sqrt(np.einsum("ij,ij->i", p_rows, p_rows))
        kernel_seconds = time.perf_counter() - kernel_start

        def exact_z(a: int, b: int) -> float:
            # Bit-identical to distance_comp(dce[ids[a]], dce[ids[b]], t):
            # same elementwise expression, same 1-D ddot reduction.
            o = components[ids[a]]
            row = p_rows[b]
            return float((o[0] * row[:width] - o[1] * row[width:]) @ vector)

        heap = ComparisonMaxHeap(k, lambda a, b: exact_z(a, b) >= 0.0)
        offered = 0
        while offered < m and not heap.is_full():
            heap.offer(offered)
            offered += 1
        scanned = 0
        while offered < m:
            top = heap.top()
            scan_start = time.perf_counter()
            # Batched pivot-vs-candidates scan: fold the pivot's o-role
            # rows into one weight vector, one product, one matvec.  The
            # batched value may differ from the scalar oracle's only by
            # product association and summation order, which moves it by
            # at most ~2 D eps of the Cauchy-Schwarz bound below — any
            # entry within the far-larger suspicion threshold is
            # re-reduced with the exact per-pair expression before its
            # sign is trusted, so a batched sign never silently diverges.
            o = components[ids[top]]
            weights = np.concatenate([o[0], o[1]])
            products = p_rows[offered:] * weights
            tail_z = products @ doubled
            threshold = (
                self._SUSPICION * doubled_norm * float(np.abs(weights).max())
            ) * p_norms[offered:]
            suspicious = np.abs(tail_z) <= threshold
            if suspicious.any():
                for row in np.nonzero(suspicious)[0]:
                    tail_z[row] = exact_z(top, offered + int(row))
            kernel_seconds += time.perf_counter() - scan_start
            accept_mask = tail_z >= 0.0
            first = int(np.argmax(accept_mask))
            if not accept_mask[first]:
                scanned += int(tail_z.shape[0])
                break
            scanned += first + 1
            heap.replace_top(offered + first)
            offered += first + 1
        return RefineOutcome(
            ids=ids[heap.items()],
            comparisons=heap.oracle_calls + scanned,
            kernel_seconds=kernel_seconds,
        )


#: Registered refine engines by name.
REFINE_ENGINES: dict[str, RefineEngine] = {
    HeapRefineEngine.name: HeapRefineEngine(),
    VectorizedRefineEngine.name: VectorizedRefineEngine(),
}

#: The serving default: the batched kernel (bit-identical to ``heap``).
DEFAULT_REFINE_ENGINE = VectorizedRefineEngine.name


def available_refine_engines() -> tuple[str, ...]:
    """Registered engine names, stable order (reference first)."""
    return tuple(REFINE_ENGINES)


def get_refine_engine(engine: "str | RefineEngine | None") -> RefineEngine:
    """Resolve an engine name (or pass an instance through).

    ``None`` resolves to :data:`DEFAULT_REFINE_ENGINE`.
    """
    if engine is None:
        return REFINE_ENGINES[DEFAULT_REFINE_ENGINE]
    if isinstance(engine, str):
        try:
            return REFINE_ENGINES[engine]
        except KeyError:
            raise ParameterError(
                f"unknown refine engine {engine!r}; "
                f"available: {', '.join(available_refine_engines())}"
            ) from None
    if isinstance(engine, RefineEngine):
        return engine
    raise ParameterError(
        f"refine engine must be a name or RefineEngine, got {type(engine)!r}"
    )
