"""Persistence: saving and loading the encrypted index and key bundles.

A deployed PP-ANNS system builds the index once (encryption + HNSW
construction dominate setup cost) and serves it for a long time, so both
sides of the trust boundary need durable state:

* the **server** persists the :class:`EncryptedIndex` — ciphertexts plus
  the filter backend's structure, no key material (`save_index` /
  `load_index`);
* the **owner/user** persist the :class:`SecretKeyBundle`
  (`save_keys` / `load_keys`), which must be stored separately from the
  index (the whole point of the scheme).

Everything goes through ``numpy.savez_compressed`` with a manifest of
scalar metadata.  Three index format versions exist (the normative
specification is ``docs/FORMATS.md``):

* **v1** — seed era, HNSW-only (``graph_*`` keys, vectors duplicated);
* **v2** — pluggable backends: records the backend kind and its state
  arrays (via :meth:`FilterBackend.state_arrays`).  Still what
  :func:`save_index` writes for a monolithic index;
* **v3** — sharded: a shard manifest (count, strategy, assignment) plus
  per-shard backend payloads under ``shard{i}_`` prefixes.  Written for
  a :class:`~repro.core.sharding.ShardedEncryptedIndex`;
* **v4** — a journaled *directory* store (``MANIFEST.json`` + a base
  npz + checksummed delta segments) handled by
  :mod:`repro.core.journal`; :func:`load_index` routes directory paths
  there.  v2/v3 payloads additionally carry the optional ``live_ids`` /
  ``retired`` arrays a compaction introduces (the backend then indexes
  only the surviving rows).

:func:`load_index` reads all of them.  Both npz write formats additionally
carry optional **build metadata** (``build_seconds`` = the
encrypt/build wall-clock split, ``build_mode``, ``build_workers``,
``shard_build_seconds`` / ``shard_build_sizes``) whenever the index
still holds the construction pipeline's
:class:`~repro.core.build.BuildReport`; readers reattach it and
tolerate its absence.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.backends import backend_from_state
from repro.core.build import BuildReport, ShardBuildTiming
from repro.core.dce import DCEEncryptedDatabase
from repro.core.errors import CiphertextFormatError
from repro.core.index import EncryptedIndex
from repro.core.keys import DCEKey, DCPEKey
from repro.core.roles import SecretKeyBundle
from repro.core.sharding import Shard, ShardedEncryptedIndex
from repro.crypto.permutation import Permutation

__all__ = ["save_index", "load_index", "save_keys", "load_keys"]

_FORMAT_VERSION = 2
_SHARDED_FORMAT_VERSION = 3

#: Versions load_index understands; v1 predates pluggable backends and
#: implies an HNSW graph serialized under the same ``graph_*`` keys; v3
#: adds the shard manifest and per-shard payloads.
_READABLE_VERSIONS = (1, 2, 3)


def _common_arrays(
    index: "EncryptedIndex | ShardedEncryptedIndex", version: int
) -> dict[str, np.ndarray]:
    """The array manifest shared by format v2 and v3."""
    arrays = {
        "format_version": np.array([version], dtype=np.int64),
        "backend_kind": np.array([index.backend_kind]),
        "sap_vectors": index.sap_vectors,
        "dce_components": index.dce_database.components,
        "dce_key_id": np.array([index.dce_database.key_id], dtype=np.int64),
        "tombstones": np.array(sorted(index.tombstones), dtype=np.int64),
    }
    retired = getattr(index, "retired", frozenset())
    if retired:
        arrays["retired"] = np.array(sorted(retired), dtype=np.int64)
    # Optional build metadata (docs/FORMATS.md): present only when the
    # index still carries the construction pipeline's BuildReport.
    report = getattr(index, "build_report", None)
    if report is not None:
        arrays["build_seconds"] = np.array(
            [report.encrypt_seconds, report.build_seconds]
        )
        arrays["build_mode"] = np.array([report.build_mode])
        arrays["build_workers"] = np.array(
            [-1 if report.build_workers is None else report.build_workers],
            dtype=np.int64,
        )
        arrays["shard_build_seconds"] = np.array(
            [timing.seconds for timing in report.shard_timings]
        )
        arrays["shard_build_sizes"] = np.array(
            [timing.num_vectors for timing in report.shard_timings],
            dtype=np.int64,
        )
    return arrays


def _load_build_report(
    data, kind: str, index: "EncryptedIndex | ShardedEncryptedIndex"
) -> None:
    """Reattach the persisted :class:`BuildReport`, if the file has one."""
    if "build_seconds" not in data:
        return
    encrypt_seconds, build_seconds = (float(x) for x in data["build_seconds"])
    workers = int(data["build_workers"][0])
    shard_seconds = data["shard_build_seconds"]
    shard_sizes = data["shard_build_sizes"]
    index.build_report = BuildReport(
        backend=kind,
        num_vectors=int(index.sap_vectors.shape[0]),
        dim=index.dim,
        shards=getattr(index, "num_shards", 1),
        build_mode=str(data["build_mode"][0]),
        build_workers=None if workers < 0 else workers,
        encrypt_seconds=encrypt_seconds,
        build_seconds=build_seconds,
        shard_timings=tuple(
            ShardBuildTiming(
                shard_id=shard_id,
                seconds=float(seconds),
                num_vectors=int(size),
            )
            for shard_id, (seconds, size) in enumerate(
                zip(shard_seconds, shard_sizes)
            )
        ),
    )


def _index_arrays(
    index: "EncryptedIndex | ShardedEncryptedIndex",
) -> dict[str, np.ndarray]:
    """The complete array payload :func:`save_index` writes.

    Factored out so :mod:`repro.core.journal` can serialize the same
    payload into a v4 base file, and so tests can digest an index's
    persisted state without touching disk.
    """
    if isinstance(index, ShardedEncryptedIndex):
        arrays = _common_arrays(index, _SHARDED_FORMAT_VERSION)
        arrays["num_shards"] = np.array([index.num_shards], dtype=np.int64)
        arrays["shard_strategy"] = np.array([index.strategy])
        arrays["shard_assignment"] = index.shard_assignment()
        for shard in index.shards:
            prefix = f"shard{shard.shard_id}_"
            arrays[prefix + "ids"] = shard.global_ids
            if shard.backend is not None:
                for key, value in shard.backend.state_arrays().items():
                    arrays[prefix + key] = value
        return arrays
    arrays = _common_arrays(index, _FORMAT_VERSION)
    if index.live_ids is not None:
        arrays["live_ids"] = index.live_ids
    arrays.update(index.backend.state_arrays())
    return arrays


def save_index(
    path: str | os.PathLike, index: "EncryptedIndex | ShardedEncryptedIndex"
) -> None:
    """Persist an index (server-side state, no keys).

    Monolithic indexes are written as format v2, sharded indexes as
    format v3 (shard manifest + per-shard backend payloads); see
    ``docs/FORMATS.md``.  For the journaled directory format (v4) use
    :class:`repro.core.journal.IndexJournal` instead.
    """
    np.savez_compressed(path, **_index_arrays(index))


def _load_sharded(
    data, kind: str, sap_vectors: np.ndarray, dce: DCEEncryptedDatabase
) -> ShardedEncryptedIndex:
    """Reassemble a :class:`ShardedEncryptedIndex` from a v3 payload."""
    num_shards = int(data["num_shards"][0])
    strategy = str(data["shard_strategy"][0])
    retired = frozenset(int(i) for i in data.get("retired", ()))
    shards = []
    for shard_id in range(num_shards):
        prefix = f"shard{shard_id}_"
        global_ids = np.asarray(data[prefix + "ids"], dtype=np.int64)
        if global_ids.size == 0:
            shards.append(Shard(shard_id, None, global_ids))
            continue
        state = {
            key[len(prefix):]: data[key]
            for key in data
            if key.startswith(prefix) and key != prefix + "ids"
        }
        backend = backend_from_state(kind, sap_vectors[global_ids], state)
        shards.append(Shard(shard_id, backend, global_ids))
    index = ShardedEncryptedIndex(
        sap_vectors, shards, dce, strategy=strategy, retired=retired,
        kind_hint=kind,
    )
    # The manifest's global assignment must agree with the per-shard id
    # maps the routing tables were rebuilt from — a mismatch means the
    # file was corrupted or hand-edited.
    if not np.array_equal(index.shard_assignment(), data["shard_assignment"]):
        raise CiphertextFormatError(
            "v3 shard_assignment disagrees with the per-shard id maps"
        )
    return index


def _index_from_mapping(
    data: "dict[str, np.ndarray]",
) -> "EncryptedIndex | ShardedEncryptedIndex":
    """Reassemble an index from a loaded v1/v2/v3 array payload.

    ``data`` is a plain mapping of the npz keys — the inverse of
    :func:`_index_arrays`; :mod:`repro.core.journal` uses it to decode
    v4 base files.
    """
    version = int(data["format_version"][0])
    if version not in _READABLE_VERSIONS:
        raise CiphertextFormatError(
            f"unsupported index format version {version}"
        )
    kind = str(data["backend_kind"][0]) if version >= 2 else "hnsw"
    dce = DCEEncryptedDatabase(
        data["dce_components"], int(data["dce_key_id"][0])
    )
    sap_vectors = data["sap_vectors"]
    if version >= 3:
        index = _load_sharded(data, kind, sap_vectors, dce)
    else:
        live_ids = (
            np.asarray(data["live_ids"], dtype=np.int64)
            if "live_ids" in data
            else None
        )
        retired = frozenset(int(i) for i in data.get("retired", ()))
        backend_vectors = (
            sap_vectors if live_ids is None else sap_vectors[live_ids]
        )
        backend = backend_from_state(kind, backend_vectors, data)
        index = EncryptedIndex(
            sap_vectors, backend, dce, live_ids=live_ids, retired=retired
        )
    for tombstone in data["tombstones"]:
        index._mark_deleted(int(tombstone))
    _load_build_report(data, kind, index)
    return index


def load_index(
    path: str | os.PathLike,
) -> "EncryptedIndex | ShardedEncryptedIndex":
    """Load an index saved by :func:`save_index` (format v1-v3) or a
    journaled v4 directory store (base + delta segments replayed)."""
    if os.path.isdir(path):
        # v4: a journal directory — delegate to the journal subsystem
        # (imported lazily; journal imports this module at top level).
        from repro.core.journal import IndexJournal

        return IndexJournal.open(path).load()
    with np.load(path) as data:
        return _index_from_mapping({key: data[key] for key in data.files})


def save_keys(path: str | os.PathLike, keys: SecretKeyBundle) -> None:
    """Persist a :class:`SecretKeyBundle` (owner/user-side secret state)."""
    dce = keys.dce_key
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION], dtype=np.int64),
        dim=np.array([keys.dim], dtype=np.int64),
        dce_dim=np.array([dce.dim], dtype=np.int64),
        m1=dce.m1,
        m1_inv=dce.m1_inv,
        m2=dce.m2,
        m2_inv=dce.m2_inv,
        m_up=dce.m_up,
        m_down=dce.m_down,
        m3_inv=dce.m3_inv,
        pi1=dce.pi1.indices,
        pi2=dce.pi2.indices,
        r_values=np.array([dce.r1, dce.r2, dce.r3, dce.r4]),
        kv=np.stack([dce.kv1, dce.kv2, dce.kv3, dce.kv4]),
        dce_key_id=np.array([dce.key_id], dtype=np.int64),
        dcpe=np.array([keys.dcpe_key.scale, keys.dcpe_key.beta]),
        dcpe_key_id=np.array([keys.dcpe_key.key_id], dtype=np.int64),
    )


def load_keys(path: str | os.PathLike) -> SecretKeyBundle:
    """Load a :class:`SecretKeyBundle` saved by :func:`save_keys`."""
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise CiphertextFormatError(f"unsupported key format version {version}")
        r_values = data["r_values"]
        kv = data["kv"]
        dce_key = DCEKey(
            dim=int(data["dce_dim"][0]),
            m1=data["m1"],
            m1_inv=data["m1_inv"],
            m2=data["m2"],
            m2_inv=data["m2_inv"],
            m_up=data["m_up"],
            m_down=data["m_down"],
            m3_inv=data["m3_inv"],
            pi1=Permutation(data["pi1"]),
            pi2=Permutation(data["pi2"]),
            r1=float(r_values[0]),
            r2=float(r_values[1]),
            r3=float(r_values[2]),
            r4=float(r_values[3]),
            kv1=kv[0],
            kv2=kv[1],
            kv3=kv[2],
            kv4=kv[3],
            key_id=int(data["dce_key_id"][0]),
        )
        dcpe_key = DCPEKey(
            scale=float(data["dcpe"][0]),
            beta=float(data["dcpe"][1]),
            key_id=int(data["dcpe_key_id"][0]),
        )
        return SecretKeyBundle(
            dim=int(data["dim"][0]), dce_key=dce_key, dcpe_key=dcpe_key
        )
