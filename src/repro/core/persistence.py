"""Persistence: saving and loading the encrypted index and key bundles.

A deployed PP-ANNS system builds the index once (encryption + HNSW
construction dominate setup cost) and serves it for a long time, so both
sides of the trust boundary need durable state:

* the **server** persists the :class:`EncryptedIndex` — ciphertexts plus
  graph adjacency, no key material (`save_index` / `load_index`);
* the **owner/user** persist the :class:`SecretKeyBundle`
  (`save_keys` / `load_keys`), which must be stored separately from the
  index (the whole point of the scheme).

Everything goes through ``numpy.savez_compressed`` with a manifest of
scalar metadata; graph adjacency is flattened to (node, level, neighbor)
triples.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.dce import DCEEncryptedDatabase
from repro.core.errors import CiphertextFormatError
from repro.core.index import EncryptedIndex
from repro.core.keys import DCEKey, DCPEKey
from repro.core.roles import SecretKeyBundle
from repro.crypto.permutation import Permutation
from repro.hnsw.graph import HNSWIndex, HNSWParams, _Node

__all__ = ["save_index", "load_index", "save_keys", "load_keys"]

_FORMAT_VERSION = 1


def _graph_to_arrays(graph: HNSWIndex) -> dict[str, np.ndarray]:
    """Flatten graph structure into serializable arrays."""
    levels = np.array([graph.node_level(i) for i in range(graph.vectors.shape[0])],
                      dtype=np.int64)
    edges = []
    for node in range(graph.vectors.shape[0]):
        for level in range(int(levels[node]) + 1):
            for neighbor in graph.neighbors(node, level):
                edges.append((node, level, neighbor))
    edge_array = (
        np.array(edges, dtype=np.int64) if edges else np.empty((0, 3), dtype=np.int64)
    )
    deleted = np.array(sorted(
        i for i in range(graph.vectors.shape[0]) if graph.is_deleted(i)
    ), dtype=np.int64)
    return {
        "graph_vectors": graph.vectors,
        "graph_levels": levels,
        "graph_edges": edge_array,
        "graph_deleted": deleted,
        "graph_entry_point": np.array(
            [-1 if graph.entry_point is None else graph.entry_point], dtype=np.int64
        ),
        "graph_params": np.array(
            [graph.params.m, graph.params.ef_construction], dtype=np.int64
        ),
    }


def _graph_from_arrays(data: dict[str, np.ndarray]) -> HNSWIndex:
    """Rebuild an HNSWIndex from :func:`_graph_to_arrays` output."""
    vectors = data["graph_vectors"]
    levels = data["graph_levels"]
    m, ef_construction = (int(x) for x in data["graph_params"])
    graph = HNSWIndex(vectors.shape[1], HNSWParams(m=m, ef_construction=ef_construction))
    # Reconstruct internal state directly; going through insert() would
    # re-run construction and change the edges.
    count = vectors.shape[0]
    graph._buffer = vectors.copy()
    graph._nodes = [
        _Node(level=int(levels[i]), neighbors=[[] for _ in range(int(levels[i]) + 1)])
        for i in range(count)
    ]
    for node, level, neighbor in data["graph_edges"]:
        graph._nodes[int(node)].neighbors[int(level)].append(int(neighbor))
    graph._deleted = set(int(i) for i in data["graph_deleted"])
    entry = int(data["graph_entry_point"][0])
    graph._entry_point = None if entry < 0 else entry
    graph._max_level = int(levels.max()) if count else -1
    return graph


def save_index(path: str | os.PathLike, index: EncryptedIndex) -> None:
    """Persist an :class:`EncryptedIndex` (server-side state, no keys)."""
    arrays = {
        "format_version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "sap_vectors": index.sap_vectors,
        "dce_components": index.dce_database.components,
        "dce_key_id": np.array([index.dce_database.key_id], dtype=np.int64),
        "tombstones": np.array(sorted(index.tombstones), dtype=np.int64),
    }
    arrays.update(_graph_to_arrays(index.graph))
    np.savez_compressed(path, **arrays)


def load_index(path: str | os.PathLike) -> EncryptedIndex:
    """Load an :class:`EncryptedIndex` saved by :func:`save_index`."""
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise CiphertextFormatError(
                f"unsupported index format version {version}"
            )
        dce = DCEEncryptedDatabase(
            data["dce_components"], int(data["dce_key_id"][0])
        )
        graph = _graph_from_arrays({key: data[key] for key in data.files})
        index = EncryptedIndex(data["sap_vectors"], graph, dce)
        for tombstone in data["tombstones"]:
            index._mark_deleted(int(tombstone))
    return index


def save_keys(path: str | os.PathLike, keys: SecretKeyBundle) -> None:
    """Persist a :class:`SecretKeyBundle` (owner/user-side secret state)."""
    dce = keys.dce_key
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION], dtype=np.int64),
        dim=np.array([keys.dim], dtype=np.int64),
        dce_dim=np.array([dce.dim], dtype=np.int64),
        m1=dce.m1,
        m1_inv=dce.m1_inv,
        m2=dce.m2,
        m2_inv=dce.m2_inv,
        m_up=dce.m_up,
        m_down=dce.m_down,
        m3_inv=dce.m3_inv,
        pi1=dce.pi1.indices,
        pi2=dce.pi2.indices,
        r_values=np.array([dce.r1, dce.r2, dce.r3, dce.r4]),
        kv=np.stack([dce.kv1, dce.kv2, dce.kv3, dce.kv4]),
        dce_key_id=np.array([dce.key_id], dtype=np.int64),
        dcpe=np.array([keys.dcpe_key.scale, keys.dcpe_key.beta]),
        dcpe_key_id=np.array([keys.dcpe_key.key_id], dtype=np.int64),
    )


def load_keys(path: str | os.PathLike) -> SecretKeyBundle:
    """Load a :class:`SecretKeyBundle` saved by :func:`save_keys`."""
    with np.load(path) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise CiphertextFormatError(f"unsupported key format version {version}")
        r_values = data["r_values"]
        kv = data["kv"]
        dce_key = DCEKey(
            dim=int(data["dce_dim"][0]),
            m1=data["m1"],
            m1_inv=data["m1_inv"],
            m2=data["m2"],
            m2_inv=data["m2_inv"],
            m_up=data["m_up"],
            m_down=data["m_down"],
            m3_inv=data["m3_inv"],
            pi1=Permutation(data["pi1"]),
            pi2=Permutation(data["pi2"]),
            r1=float(r_values[0]),
            r2=float(r_values[1]),
            r3=float(r_values[2]),
            r4=float(r_values[3]),
            kv1=kv[0],
            kv2=kv[1],
            kv3=kv[2],
            kv4=kv[3],
            key_id=int(data["dce_key_id"][0]),
        )
        dcpe_key = DCPEKey(
            scale=float(data["dcpe"][0]),
            beta=float(data["dcpe"][1]),
            key_id=int(data["dcpe_key_id"][0]),
        )
        return SecretKeyBundle(
            dim=int(data["dim"][0]), dce_key=dce_key, dcpe_key=dcpe_key
        )
