"""Secret-key containers for the DCE and DCPE schemes.

The key material mirrors Section IV-B's ``KeyGen`` output::

    SK = {M1, M2, M3, pi1, pi2, r1, r2, r3, r4, kv1, kv2, kv3, kv4}

plus the inverses of the matrices (held by the data owner so trapdoor
generation never needs a linear solve).  DCPE's key is the pair
``(s, beta)`` from the Scale-and-Perturb construction (Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.permutation import Permutation

__all__ = ["DCEKey", "DCPEKey"]


@dataclass(frozen=True)
class DCEKey:
    """Secret key of the Distance Comparison Encryption scheme.

    Attributes
    ----------
    dim:
        Plaintext dimensionality ``d`` accepted by the scheme (after any
        odd-dimension padding; see :class:`repro.core.dce.DCEScheme`).
    m1, m1_inv, m2, m2_inv:
        The ``(d/2+4) x (d/2+4)`` invertible matrices of randomization
        step 4 and their inverses.
    m_up, m_down:
        The two ``(d+8) x (2d+16)`` halves of ``M3`` (Equation 8).
    m3_inv:
        Inverse of the full ``(2d+16) x (2d+16)`` matrix ``M3``.
    pi1, pi2:
        Random permutations on ``R^d`` and ``R^{d+8}``.
    r1, r2, r3, r4:
        The four scheme-wide random reals of randomization step 3.
    kv1, kv2, kv3, kv4:
        The four random vectors in ``R^{2d+16}`` with
        ``kv1 * kv3 == kv2 * kv4`` elementwise (transformation phase).
    key_id:
        Random tag used to detect mixing ciphertexts across keys.
    """

    dim: int
    m1: np.ndarray
    m1_inv: np.ndarray
    m2: np.ndarray
    m2_inv: np.ndarray
    m_up: np.ndarray
    m_down: np.ndarray
    m3_inv: np.ndarray
    pi1: Permutation
    pi2: Permutation
    r1: float
    r2: float
    r3: float
    r4: float
    kv1: np.ndarray
    kv2: np.ndarray
    kv3: np.ndarray
    kv4: np.ndarray
    key_id: int = field(default=0)

    @property
    def randomized_dim(self) -> int:
        """Dimensionality ``d + 8`` of vectors after randomization."""
        return self.dim + 8

    @property
    def ciphertext_dim(self) -> int:
        """Dimensionality ``2d + 16`` of each transformed component."""
        return 2 * self.dim + 16


@dataclass(frozen=True)
class DCPEKey:
    """Secret key of the DCPE / Scale-and-Perturb scheme.

    Attributes
    ----------
    scale:
        The scaling factor ``s`` (paper recommendation: 1024).
    beta:
        The perturbation budget; each ciphertext is ``s*p + lambda`` with
        ``||lambda|| <= s*beta/4``.  ``beta == 0`` disables the noise
        (the paper's "no noise" reference curves in Figure 4).
    key_id:
        Random tag used to detect mixing ciphertexts across keys.
    """

    scale: float
    beta: float
    key_id: int = field(default=0)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
