"""Filter-and-refine search (Section V-B, Algorithm 2).

Given the encrypted query pair — the DCPE ciphertext ``C_SAP(q)`` for the
filter phase and the DCE trapdoor ``T_q`` for the refine phase — the
server:

* **filter**: runs k'-ANNS (``k' = ratio_k * k > k``) on the filter
  backend over ``C_SAP``, using ordinary Euclidean distances on DCPE
  ciphertexts (same cost as plaintext distances), yielding high-quality
  candidates;
* **refine**: maintains a k-bounded max-heap ordered *only* by DCE
  ``DistanceComp`` outcomes, offering each candidate in turn; O(log k)
  comparisons per offer, each comparison O(d).

Total server cost: ``O(d (log n + k' log k))`` per query (Section V-C).

The ``k'`` knob trades accuracy for refine cost (Figure 5); ``beta``
bounds the filter phase's candidate quality (Figure 4).

The batch entry point is :func:`execute_batch`: parameter resolution,
the key check, and liveness-mask construction happen once per batch, and
each query then runs the shared single-query engine.  The seed-era
:func:`filter_and_refine` / :func:`filter_only` signatures remain as thin
wrappers over the same engine.

The engine is index-shape agnostic: it calls ``index.filter_search``, so
a monolithic :class:`~repro.core.index.EncryptedIndex` answers from its
single backend while a
:class:`~repro.core.sharding.ShardedEncryptedIndex` scatter-gathers the
filter phase across its shards (and the result carries per-shard
timings).  The refine phase is identical either way — ``C_DCE`` is never
partitioned.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dce import DCEEncryptedDatabase, DCETrapdoor, distance_comp
from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.index import EncryptedIndex
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchReport,
    SearchResult,
    SearchResultBatch,
    resolve_ef_search,
)
from repro.core.sharding import ShardedEncryptedIndex
from repro.hnsw.graph import SearchStats
from repro.hnsw.heap import ComparisonMaxHeap

__all__ = [
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchRequest",
    "SearchReport",
    "SearchResult",
    "SearchResultBatch",
    "filter_and_refine",
    "filter_only",
    "execute_batch",
]


def _refine(
    dce: DCEEncryptedDatabase,
    trapdoor: DCETrapdoor,
    candidates: list[int],
    k: int,
) -> tuple[np.ndarray, int]:
    """Algorithm 2 lines 2-9: comparison-only top-k over the candidates."""

    def is_farther(a: int, b: int) -> bool:
        return distance_comp(dce[a], dce[b], trapdoor) >= 0.0

    heap = ComparisonMaxHeap(k, is_farther)
    for candidate in candidates:
        heap.offer(candidate)
    return np.array(heap.items(), dtype=np.int64), heap.oracle_calls


def _run_single(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    sap_vector: np.ndarray,
    trapdoor: DCETrapdoor,
    request: SearchRequest,
    k_prime: int,
    live_mask: np.ndarray,
) -> SearchResult:
    """One query through the shared engine; parameters are pre-resolved."""
    ef_search = resolve_ef_search(request.ef_search, k_prime)

    # -- filter phase (Line 1; scatter-gather when the index is sharded) -------
    stats = SearchStats()
    start = time.perf_counter()
    candidate_ids, _, shard_timings = index.filter_search(
        sap_vector, k_prime, ef_search=ef_search, stats=stats
    )
    if candidate_ids.shape[0]:
        candidate_ids = candidate_ids[live_mask[candidate_ids]]
    filter_seconds = time.perf_counter() - start

    if request.mode == "filter_only":
        return SearchResult(
            ids=candidate_ids[: request.k],
            filter_stats=stats,
            refine_comparisons=0,
            k_prime=k_prime,
            filter_seconds=filter_seconds,
            request=request,
            shard_timings=shard_timings,
        )

    # -- refine phase (Lines 2-9; always global, over the merged candidates) ---
    start = time.perf_counter()
    ids, comparisons = _refine(
        index.dce_database,
        trapdoor,
        [int(i) for i in candidate_ids],
        request.k,
    )
    refine_seconds = time.perf_counter() - start
    return SearchResult(
        ids=ids,
        filter_stats=stats,
        refine_comparisons=comparisons,
        k_prime=k_prime,
        filter_seconds=filter_seconds,
        refine_seconds=refine_seconds,
        request=request,
        shard_timings=shard_timings,
    )


def _check_query_dim(
    index: "EncryptedIndex | ShardedEncryptedIndex", sap: np.ndarray, what: str
) -> None:
    if sap.shape[-1] != index.dim:
        raise ParameterError(
            f"{what} has dimension {sap.shape[-1]}, but the index holds "
            f"{index.dim}-dimensional ciphertexts"
        )


def execute_batch(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    default_ratio_k: int = 8,
    ratio_k: int | None = None,
    ef_search: int | None = None,
    mode: str | None = None,
) -> SearchResultBatch:
    """Answer a whole encrypted batch through one amortized pass.

    Parameter resolution, the trapdoor key check, and the liveness mask
    are computed once; each query then runs Algorithm 2 against the
    shared state.  Results are element-wise identical to answering the
    batch's queries one at a time.
    """
    _check_query_dim(index, batch.sap_vectors, "query batch")
    request = batch.request.resolve(
        default_ratio_k, ratio_k=ratio_k, ef_search=ef_search, mode=mode
    )
    k_prime = request.k_prime
    if request.mode == "full":
        if batch.trapdoor_vectors.shape[1] == 0:
            raise ParameterError(
                "batch carries no trapdoors (encrypted for filter_only mode); "
                "re-encrypt with mode='full' to refine"
            )
        if batch.key_id != index.dce_database.key_id:
            raise KeyMismatchError("query trapdoors do not match the index's DCE key")
    live_mask = index.live_mask()
    key_id = batch.key_id
    results = [
        _run_single(
            index,
            batch.sap_vectors[i],
            DCETrapdoor(batch.trapdoor_vectors[i], key_id),
            request,
            k_prime,
            live_mask,
        )
        for i in range(len(batch))
    ]
    return SearchResultBatch(results, request=request)


def filter_only(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    ef_search: int | None = None,
    k_prime: int | None = None,
) -> SearchResult:
    """The filter phase alone — the paper's ``HNSW(filter)`` reference.

    Runs k'-ANNS on the encrypted filter backend and returns the top-k of
    the candidates *by approximate distance*, skipping DCE entirely.
    Used by Figure 4 (beta tuning) and as the Figure 6 lower bound.
    """
    k_prime = k_prime if k_prime is not None else query.k
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="filter_only")
    return _run_single(
        index, query.sap_vector, query.trapdoor, request, k_prime, index.live_mask()
    )


def filter_and_refine(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    k_prime: int,
    ef_search: int | None = None,
) -> SearchResult:
    """Algorithm 2: k'-ANNS filter on the encrypted backend, DCE refine.

    Parameters
    ----------
    index:
        The server's encrypted index.
    query:
        The encrypted query pair.
    k_prime:
        Filter-phase candidate count ``k' >= k`` (``Ratio_k * k`` in the
        paper's parameterization).
    ef_search:
        Filter-phase beam width; values below ``k'`` are raised to ``k'``
        (see :func:`repro.core.protocol.resolve_ef_search`).

    Returns
    -------
    SearchResult
        The k result ids plus full phase instrumentation.
    """
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    if query.trapdoor.ciphertext_dim == 0:
        raise ParameterError(
            "query carries no trapdoor (encrypted for filter_only mode); "
            "re-encrypt with mode='full' to refine"
        )
    if query.trapdoor.key_id != index.dce_database.key_id:
        raise KeyMismatchError("query trapdoor does not match the index's DCE key")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="full")
    return _run_single(
        index, query.sap_vector, query.trapdoor, request, k_prime, index.live_mask()
    )
