"""Filter-and-refine search (Section V-B, Algorithm 2) as a staged pipeline.

Given the encrypted query pair — the DCPE ciphertext ``C_SAP(q)`` for the
filter phase and the DCE trapdoor ``T_q`` for the refine phase — the
server runs every query through one explicit **staged pipeline**,
:data:`PIPELINE_STAGES`: named stage callables over a shared
:class:`PipelineContext`, executed in order by :func:`run_pipeline`:

* **resolve**: per-query parameter resolution — the ``ef_search`` clamp
  against ``k'`` and fresh filter instrumentation;
* **filter**: runs k'-ANNS (``k' = ratio_k * k > k``) on the filter
  backend over ``C_SAP``, using ordinary Euclidean distances on DCPE
  ciphertexts (same cost as plaintext distances), yielding high-quality
  candidates — scatter-gather when the index is sharded;
* **mask**: drops tombstoned candidates against the batch's liveness
  mask;
* **refine**: selects the top-k by DCE ``DistanceComp`` outcomes alone,
  through a pluggable :class:`~repro.core.refine.RefineEngine` — the
  ``heap`` reference (one scalar oracle call per comparison, O(log k)
  per candidate) or the default ``vectorized`` engine (one contiguous
  ``C_DCE`` gather + batched sign kernels, bit-identical ids).  Skipped
  for ``filter_only`` requests;
* **respond**: assembles the instrumented :class:`SearchResult` from
  the context (ids, per-stage seconds, shard timings).

Every stage is timed by the runner (``PipelineContext.stage_seconds``);
the filter/mask/refine entries surface as the result's
``filter_seconds`` / ``mask_seconds`` / ``refine_seconds`` split, so
per-stage attribution is a property of the pipeline, not of hand-placed
clocks.  The staged decomposition is id-preserving by construction —
the stages perform exactly the seed path's operations in the seed
path's order, so results are bit-identical to the historical monolithic
body (property-tested in ``tests/strategies/test_pipeline_properties.py``
for every backend kind, monolithic and sharded).

Total server cost: ``O(d (log n + k' log k))`` per query (Section V-C).

The ``k'`` knob trades accuracy for refine cost (Figure 5); ``beta``
bounds the filter phase's candidate quality (Figure 4).

The batch entry point is :func:`execute_batch`: parameter resolution,
the key check, and liveness-mask construction happen once per batch, and
the queries then **fan out over the shared worker pool**
(:mod:`repro.core.executor`) — numpy's distance and DCE kernels release
the GIL, so independent queries overlap on multi-core hosts.  Results
come back in query order and a failing query neither kills nor reorders
its siblings (the first failure by query position is re-raised after the
gather).  :func:`execute_batch_settled` is the no-raise form the online
serving layer (:mod:`repro.serve`) consumes: each query settles
independently to its result or its exception, so a scheduler-formed
micro-batch can deliver per-query failures to per-query futures without
discarding sibling answers.  The seed-era :func:`filter_and_refine` /
:func:`filter_only` signatures remain as thin wrappers over the same
pipeline.

The engine is index-shape agnostic: it calls ``index.filter_search``, so
a monolithic :class:`~repro.core.index.EncryptedIndex` answers from its
single backend while a
:class:`~repro.core.sharding.ShardedEncryptedIndex` scatter-gathers the
filter phase across its shards (and the result carries per-shard
timings).  The refine phase is identical either way — ``C_DCE`` is never
partitioned.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.dce import DCETrapdoor
from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.executor import Settled, map_settled
from repro.core.filterengine import (
    FILTER_ENGINES,
    FilterEngine,
    get_filter_engine,
)
from repro.core.index import EncryptedIndex
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
    resolve_ef_search,
)
from repro.core.refine import (
    REFINE_ENGINES,
    RefineEngine,
    RefineOutcome,
    get_refine_engine,
)
from repro.core.sharding import ShardedEncryptedIndex
from repro.hnsw.graph import SearchStats

__all__ = [
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchRequest",
    "SearchReport",  # noqa: F822  (module __getattr__, deprecated alias)
    "SearchResult",
    "SearchResultBatch",
    "PipelineContext",
    "PIPELINE_STAGES",
    "run_pipeline",
    "filter_and_refine",
    "filter_only",
    "execute_batch",
    "execute_batch_settled",
]


def __getattr__(name: str):
    """Forward the deprecated ``SearchReport`` alias (warns on access)."""
    if name == "SearchReport":
        warnings.warn(
            "SearchReport is deprecated; use SearchResult instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return SearchResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- the staged pipeline ---------------------------------------------------------


@dataclass
class PipelineContext:
    """Everything one query's staged pipeline reads and writes.

    The immutable inputs (index, ciphertexts, resolved request, batch
    liveness mask, refine engine) are set by the caller; the stages fill
    in the intermediate state (``candidate_ids``, ``refine_outcome``,
    ...) and :func:`run_pipeline` records each stage's wall clock into
    ``stage_seconds``.  The ``respond`` stage folds it all into
    ``result``.
    """

    index: "EncryptedIndex | ShardedEncryptedIndex"
    sap_vector: np.ndarray
    trapdoor: DCETrapdoor
    request: SearchRequest
    k_prime: int
    live_mask: np.ndarray
    engine: RefineEngine
    #: Filter-stage engine (name, instance or None for the default);
    #: resolved to an instance by ``stage_filter``.
    filter_engine: "FilterEngine | str | None" = None
    #: Precomputed filter output for this query — set by the batched
    #: filter pre-pass in :func:`execute_batch_settled` so ``stage_filter``
    #: consumes ``(ids, dists, shard_timings, stats, seconds)`` instead of
    #: searching again.
    prefiltered: tuple | None = None

    # -- filled in by the stages --
    ef_search: int | None = None
    filter_stats: SearchStats | None = None
    candidate_ids: np.ndarray | None = None
    candidate_dists: np.ndarray | None = None
    shard_timings: tuple | None = None
    refine_outcome: RefineOutcome | None = None
    #: Per-query filter wall clock from the batched pre-pass (the
    #: batch's filter time smeared evenly); overrides the stage timer.
    filter_seconds_override: float | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)
    result: SearchResult | None = None


def stage_resolve(ctx: PipelineContext) -> None:
    """Per-query parameter resolution: the ``ef_search`` clamp + stats."""
    ctx.ef_search = resolve_ef_search(ctx.request.ef_search, ctx.k_prime)
    ctx.filter_stats = SearchStats()


def stage_filter(ctx: PipelineContext) -> None:
    """k'-ANNS over ``C_SAP`` (Line 1; scatter-gather when sharded).

    When the batch executor already filtered this query through a
    batched kernel (``ctx.prefiltered``), the stage just installs that
    output — ids, distances, timings and stats are bit-identical to
    searching here.
    """
    ctx.filter_engine = get_filter_engine(ctx.filter_engine)
    if ctx.prefiltered is not None:
        ids, dists, timings, stats, seconds = ctx.prefiltered
        ctx.candidate_ids = ids
        ctx.candidate_dists = dists
        ctx.shard_timings = timings
        ctx.filter_stats.merge(stats)
        ctx.filter_seconds_override = seconds
        return
    ctx.candidate_ids, ctx.candidate_dists, ctx.shard_timings = (
        ctx.index.filter_search(
            ctx.sap_vector,
            ctx.k_prime,
            ef_search=ctx.ef_search,
            stats=ctx.filter_stats,
            engine=ctx.filter_engine,
        )
    )


def stage_mask(ctx: PipelineContext) -> None:
    """Drop tombstoned candidates against the batch's liveness mask."""
    if ctx.candidate_ids.shape[0]:
        ctx.candidate_ids = ctx.candidate_ids[ctx.live_mask[ctx.candidate_ids]]


def stage_refine(ctx: PipelineContext) -> None:
    """DCE comparison-only top-k (Lines 2-9); no-op for filter_only."""
    if ctx.request.mode == "filter_only":
        return
    ctx.refine_outcome = ctx.engine.refine(
        ctx.index.dce_database, ctx.trapdoor, ctx.candidate_ids, ctx.request.k
    )


def stage_respond(ctx: PipelineContext) -> None:
    """Assemble the instrumented :class:`SearchResult` from the context."""
    seconds = ctx.stage_seconds
    filter_seconds = (
        ctx.filter_seconds_override
        if ctx.filter_seconds_override is not None
        else seconds.get("filter", 0.0)
    )
    filter_engine = (
        ctx.filter_engine.name if ctx.filter_engine is not None else None
    )
    if ctx.refine_outcome is None:
        ctx.result = SearchResult(
            ids=ctx.candidate_ids[: ctx.request.k],
            filter_stats=ctx.filter_stats,
            refine_comparisons=0,
            k_prime=ctx.k_prime,
            filter_seconds=filter_seconds,
            mask_seconds=seconds.get("mask", 0.0),
            filter_engine=filter_engine,
            filter_kernel_seconds=ctx.filter_stats.kernel_seconds,
            request=ctx.request,
            shard_timings=ctx.shard_timings,
        )
        return
    ctx.result = SearchResult(
        ids=ctx.refine_outcome.ids,
        filter_stats=ctx.filter_stats,
        refine_comparisons=ctx.refine_outcome.comparisons,
        k_prime=ctx.k_prime,
        filter_seconds=filter_seconds,
        mask_seconds=seconds.get("mask", 0.0),
        refine_seconds=seconds.get("refine", 0.0),
        refine_engine=ctx.engine.name,
        refine_kernel_seconds=ctx.refine_outcome.kernel_seconds,
        filter_engine=filter_engine,
        filter_kernel_seconds=ctx.filter_stats.kernel_seconds,
        request=ctx.request,
        shard_timings=ctx.shard_timings,
    )


#: The named stages of Algorithm 2's server-side execution, in order.
#: Each entry is ``(name, callable)`` over a :class:`PipelineContext`;
#: :func:`run_pipeline` times every stage under its name.
PIPELINE_STAGES: tuple[tuple[str, Callable[[PipelineContext], None]], ...] = (
    ("resolve", stage_resolve),
    ("filter", stage_filter),
    ("mask", stage_mask),
    ("refine", stage_refine),
    ("respond", stage_respond),
)


def run_pipeline(ctx: PipelineContext) -> SearchResult:
    """Run one query's :data:`PIPELINE_STAGES` in order; time each stage.

    Returns the ``respond`` stage's :class:`SearchResult`.  Stage wall
    clocks land in ``ctx.stage_seconds`` under the stage names, which is
    where the result's ``filter_seconds`` / ``mask_seconds`` /
    ``refine_seconds`` split comes from.
    """
    for name, stage in PIPELINE_STAGES:
        start = time.perf_counter()
        stage(ctx)
        ctx.stage_seconds[name] = time.perf_counter() - start
    return ctx.result


def _run_single(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    sap_vector: np.ndarray,
    trapdoor: DCETrapdoor,
    request: SearchRequest,
    k_prime: int,
    live_mask: np.ndarray,
    engine: RefineEngine,
    filter_engine: "FilterEngine | str | None" = None,
    prefiltered: tuple | None = None,
) -> SearchResult:
    """One query through the staged pipeline; parameters are pre-resolved."""
    return run_pipeline(
        PipelineContext(
            index=index,
            sap_vector=sap_vector,
            trapdoor=trapdoor,
            request=request,
            k_prime=k_prime,
            live_mask=live_mask,
            engine=engine,
            filter_engine=filter_engine,
            prefiltered=prefiltered,
        )
    )


def _check_query_dim(
    index: "EncryptedIndex | ShardedEncryptedIndex", sap: np.ndarray, what: str
) -> None:
    if sap.shape[-1] != index.dim:
        raise ParameterError(
            f"{what} has dimension {sap.shape[-1]}, but the index holds "
            f"{index.dim}-dimensional ciphertexts"
        )


def _resolve_batch(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    default_ratio_k: int,
    ratio_k: int | None,
    ef_search: int | None,
    mode: str | None,
) -> SearchRequest:
    """The once-per-batch work: dim check, request resolution, key check."""
    _check_query_dim(index, batch.sap_vectors, "query batch")
    request = batch.request.resolve(
        default_ratio_k, ratio_k=ratio_k, ef_search=ef_search, mode=mode
    )
    if request.mode == "full":
        if batch.trapdoor_vectors.shape[1] == 0:
            raise ParameterError(
                "batch carries no trapdoors (encrypted for filter_only mode); "
                "re-encrypt with mode='full' to refine"
            )
        if batch.key_id != index.dce_database.key_id:
            raise KeyMismatchError("query trapdoors do not match the index's DCE key")
    return request


def _wants_batched_kernel(index) -> bool:
    """Whether the index's backend(s) advertise a batched filter kernel."""
    backend = getattr(index, "backend", None)
    if backend is not None:
        return bool(getattr(backend, "batched_kernel", False))
    shards = getattr(index, "shards", None)
    if shards:
        return any(
            shard.backend is not None
            and getattr(shard.backend, "batched_kernel", False)
            for shard in shards
        )
    return False


def execute_batch_settled(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    default_ratio_k: int = 8,
    ratio_k: int | None = None,
    ef_search: int | None = None,
    mode: str | None = None,
    refine_engine: "str | RefineEngine | None" = None,
    filter_engine: "str | FilterEngine | None" = None,
    data_plane=None,
) -> tuple[list[Settled[SearchResult]], float, SearchRequest]:
    """The settled form of :func:`execute_batch` (the serving primitive).

    Runs the same amortized batch pass, but instead of re-raising the
    first per-query failure it returns one
    :class:`~repro.core.executor.Settled` per query, in query order —
    each holding either the query's :class:`SearchResult` or the
    exception its pipeline raised.  A failing query neither kills nor
    reorders its batch siblings, which is what lets the online serving
    scheduler (:mod:`repro.serve`) route each failure to its own future
    while the siblings' answers are delivered normally.

    Batch-level validation (dimension, trapdoor presence, key check)
    still raises directly — those failures poison every query in the
    batch equally.

    ``data_plane`` routes the batch through a
    :class:`~repro.core.plane.ProcessDataPlane` instead of the thread
    fan-out (``None`` = threads).  The plane path runs the same staged
    semantics — worker-side filter, parent-side mask, worker-side refine
    — and is bit-identical to the thread path; a worker crash settles
    exactly the affected queries with
    :class:`~repro.core.plane.DataPlaneError`.

    Returns ``(settled, wall_seconds, request)`` where ``wall_seconds``
    is the fan-out's start-to-finish wall clock and ``request`` the
    batch's fully resolved :class:`SearchRequest` (so callers never
    re-resolve and risk drifting from what actually executed).

    ``filter_engine`` selects the filter-stage engine (bit-identical
    results on every engine).  On the ``vectorized`` engine, backends
    that advertise a batched kernel (brute-force, IVF) filter the whole
    batch in one GEMM pre-pass before the per-query fan-out.  Custom
    filter-engine *instances* (not registry singletons) are not
    picklable by name, so such batches run on the thread path even when
    a data plane is supplied.
    """
    engine = get_refine_engine(refine_engine)
    fengine = get_filter_engine(filter_engine)
    request = _resolve_batch(index, batch, default_ratio_k, ratio_k, ef_search, mode)
    k_prime = request.k_prime
    live_mask = index.live_mask()
    key_id = batch.key_id

    if (
        data_plane is not None
        and len(batch)
        and not data_plane.closed
        and FILTER_ENGINES.get(fengine.name) is fengine
    ):
        fanout_start = time.perf_counter()
        settled = _settled_via_plane(
            index,
            batch,
            request,
            k_prime,
            live_mask,
            engine,
            fengine,
            key_id,
            data_plane,
        )
        return settled, time.perf_counter() - fanout_start, request

    prefiltered = None
    if (
        fengine.name == "vectorized"
        and len(batch) > 1
        and _wants_batched_kernel(index)
    ):
        # Batched filter pre-pass: one GEMM kernel answers every query's
        # filter phase (bit-identical to the per-query path); the stage
        # pipeline then consumes the precomputed candidates.  Any
        # failure here falls back to the per-query path, which settles
        # the error per query instead of poisoning the batch.
        resolved_ef = resolve_ef_search(request.ef_search, k_prime)
        stats_list = [SearchStats() for _ in range(len(batch))]
        pre_start = time.perf_counter()
        try:
            rows = index.filter_search_batch(
                batch.sap_vectors,
                k_prime,
                ef_search=resolved_ef,
                stats_list=stats_list,
                engine=fengine,
            )
        except Exception:
            prefiltered = None
        else:
            share = (time.perf_counter() - pre_start) / len(batch)
            prefiltered = [
                (ids, dists, timings, stats_list[i], share)
                for i, (ids, dists, timings) in enumerate(rows)
            ]

    def run_query(i: int) -> SearchResult:
        return _run_single(
            index,
            batch.sap_vectors[i],
            DCETrapdoor(batch.trapdoor_vectors[i], key_id),
            request,
            k_prime,
            live_mask,
            engine,
            filter_engine=fengine,
            prefiltered=None if prefiltered is None else prefiltered[i],
        )

    fanout_start = time.perf_counter()
    settled = map_settled(run_query, range(len(batch)))
    return settled, time.perf_counter() - fanout_start, request


def _settled_via_plane(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    request: SearchRequest,
    k_prime: int,
    live_mask: np.ndarray,
    engine: RefineEngine,
    fengine: FilterEngine,
    key_id,
    plane,
) -> list[Settled[SearchResult]]:
    """Run a resolved batch on the process data plane; settle each query.

    The staged semantics are the thread pipeline's, relocated: the
    filter phase runs in the workers over the shared-memory ciphertexts
    (with shard-merge or stripe routing inside the plane), the
    tombstone mask runs here in the parent against the batch's liveness
    snapshot, and the refine phase ships back to the workers when the
    engine is one of the registry singletons (picklable by name) —
    custom engine *instances* refine locally instead, so user-supplied
    engines keep working under ``executor=processes``.  Field-for-field
    the assembled :class:`SearchResult` matches ``stage_respond``.
    """
    count = len(batch)
    ef_search = resolve_ef_search(request.ef_search, k_prime)
    filtered = plane.filter_batch(
        batch.sap_vectors, k_prime, ef_search, engine=fengine.name
    )

    settled: "list[Settled[SearchResult] | None]" = [None] * count
    masked: "list[tuple[int, np.ndarray, tuple | None, SearchStats, float, float]]"
    masked = []
    for query_index, outcome in enumerate(filtered):
        if isinstance(outcome, Exception):
            settled[query_index] = Settled(error=outcome)
            continue
        candidate_ids, _dists, shard_timings, stats, filter_seconds = outcome
        mask_start = time.perf_counter()
        if candidate_ids.shape[0]:
            candidate_ids = candidate_ids[live_mask[candidate_ids]]
        mask_seconds = time.perf_counter() - mask_start
        masked.append(
            (
                query_index,
                candidate_ids,
                shard_timings,
                stats,
                filter_seconds,
                mask_seconds,
            )
        )

    if request.mode == "filter_only":
        for query_index, ids, timings, stats, filter_s, mask_s in masked:
            settled[query_index] = Settled(
                value=SearchResult(
                    ids=ids[: request.k],
                    filter_stats=stats,
                    refine_comparisons=0,
                    k_prime=k_prime,
                    filter_seconds=filter_s,
                    mask_seconds=mask_s,
                    filter_engine=fengine.name,
                    filter_kernel_seconds=stats.kernel_seconds,
                    request=request,
                    shard_timings=timings,
                )
            )
        return settled

    remote_engine = REFINE_ENGINES.get(engine.name) is engine
    if remote_engine:
        items = [
            (batch.trapdoor_vectors[query_index], ids, request.k)
            for query_index, ids, *_ in masked
        ]
        refined = plane.refine_batch(items, engine.name, key_id)
    else:
        refined = []
        for query_index, ids, *_ in masked:
            try:
                start = time.perf_counter()
                outcome = engine.refine(
                    index.dce_database,
                    DCETrapdoor(batch.trapdoor_vectors[query_index], key_id),
                    ids,
                    request.k,
                )
                refined.append((outcome, time.perf_counter() - start))
            except Exception as exc:
                refined.append(exc)

    for slot, (query_index, _ids, timings, stats, filter_s, mask_s) in enumerate(
        masked
    ):
        refine_outcome = refined[slot]
        if isinstance(refine_outcome, Exception):
            settled[query_index] = Settled(error=refine_outcome)
            continue
        outcome, refine_seconds = refine_outcome
        settled[query_index] = Settled(
            value=SearchResult(
                ids=outcome.ids,
                filter_stats=stats,
                refine_comparisons=outcome.comparisons,
                k_prime=k_prime,
                filter_seconds=filter_s,
                mask_seconds=mask_s,
                refine_seconds=refine_seconds,
                refine_engine=engine.name,
                refine_kernel_seconds=outcome.kernel_seconds,
                filter_engine=fengine.name,
                filter_kernel_seconds=stats.kernel_seconds,
                request=request,
                shard_timings=timings,
            )
        )
    return settled


def execute_batch(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    default_ratio_k: int = 8,
    ratio_k: int | None = None,
    ef_search: int | None = None,
    mode: str | None = None,
    refine_engine: "str | RefineEngine | None" = None,
    filter_engine: "str | FilterEngine | None" = None,
    data_plane=None,
) -> SearchResultBatch:
    """Answer a whole encrypted batch through one pipelined, amortized pass.

    Parameter resolution, the trapdoor key check, and the liveness mask
    are computed once; the queries then run the staged Algorithm 2
    pipeline concurrently on the shared worker pool
    (:func:`repro.core.executor.map_settled`), with results gathered in
    query order.  Per-query error isolation: every query runs to
    completion even if a sibling raises, and the first failure by query
    position is re-raised after the gather.  Results are element-wise
    identical to answering the batch's queries one at a time.

    ``refine_engine`` selects the refine-stage implementation by name
    (``"heap"`` or ``"vectorized"``); ``None`` uses the default
    (:data:`repro.core.refine.DEFAULT_REFINE_ENGINE`).
    ``filter_engine`` does the same for the filter stage
    (:data:`repro.core.filterengine.DEFAULT_FILTER_ENGINE`), including
    the batched GEMM pre-pass on backends that support it.
    ``data_plane`` routes the batch through a process data plane exactly
    as in :func:`execute_batch_settled`.

    The returned batch records the fan-out's start-to-finish wall clock
    in ``wall_seconds``; the per-query stage timings are thread-local
    and can sum to more than that when queries overlap.
    """
    settled, wall_seconds, request = execute_batch_settled(
        index,
        batch,
        default_ratio_k=default_ratio_k,
        ratio_k=ratio_k,
        ef_search=ef_search,
        mode=mode,
        refine_engine=refine_engine,
        filter_engine=filter_engine,
        data_plane=data_plane,
    )
    results = [outcome.unwrap() for outcome in settled]
    return SearchResultBatch(results, request=request, wall_seconds=wall_seconds)


def filter_only(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    ef_search: int | None = None,
    k_prime: int | None = None,
    filter_engine: "str | FilterEngine | None" = None,
) -> SearchResult:
    """The filter phase alone — the paper's ``HNSW(filter)`` reference.

    Runs k'-ANNS on the encrypted filter backend and returns the top-k of
    the candidates *by approximate distance*, skipping DCE entirely.
    Used by Figure 4 (beta tuning) and as the Figure 6 lower bound.
    """
    k_prime = k_prime if k_prime is not None else query.k
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="filter_only")
    return _run_single(
        index,
        query.sap_vector,
        query.trapdoor,
        request,
        k_prime,
        index.live_mask(),
        get_refine_engine(None),
        filter_engine=filter_engine,
    )


def filter_and_refine(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    k_prime: int,
    ef_search: int | None = None,
    refine_engine: "str | RefineEngine | None" = None,
    filter_engine: "str | FilterEngine | None" = None,
) -> SearchResult:
    """Algorithm 2: k'-ANNS filter on the encrypted backend, DCE refine.

    Parameters
    ----------
    index:
        The server's encrypted index.
    query:
        The encrypted query pair.
    k_prime:
        Filter-phase candidate count ``k' >= k`` (``Ratio_k * k`` in the
        paper's parameterization).
    ef_search:
        Filter-phase beam width; values below ``k'`` are raised to ``k'``
        (see :func:`repro.core.protocol.resolve_ef_search`).
    refine_engine:
        Refine-stage engine name or instance (``None`` = the default
        ``vectorized`` engine; see :mod:`repro.core.refine`).
    filter_engine:
        Filter-stage engine name or instance (``None`` = the default
        ``vectorized`` engine; see :mod:`repro.core.filterengine`).

    Returns
    -------
    SearchResult
        The k result ids plus full phase instrumentation.
    """
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    if query.trapdoor.ciphertext_dim == 0:
        raise ParameterError(
            "query carries no trapdoor (encrypted for filter_only mode); "
            "re-encrypt with mode='full' to refine"
        )
    if query.trapdoor.key_id != index.dce_database.key_id:
        raise KeyMismatchError("query trapdoor does not match the index's DCE key")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="full")
    return _run_single(
        index,
        query.sap_vector,
        query.trapdoor,
        request,
        k_prime,
        index.live_mask(),
        get_refine_engine(refine_engine),
        filter_engine=filter_engine,
    )
