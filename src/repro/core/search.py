"""Filter-and-refine search (Section V-B, Algorithm 2).

Given the encrypted query pair — the DCPE ciphertext ``C_SAP(q)`` for the
filter phase and the DCE trapdoor ``T_q`` for the refine phase — the
server runs a staged execution pipeline per query:

* **filter**: runs k'-ANNS (``k' = ratio_k * k > k``) on the filter
  backend over ``C_SAP``, using ordinary Euclidean distances on DCPE
  ciphertexts (same cost as plaintext distances), yielding high-quality
  candidates;
* **mask**: drops tombstoned candidates against the batch's liveness
  mask (timed separately as ``mask_seconds`` so per-stage timings sum
  to the total);
* **refine**: selects the top-k by DCE ``DistanceComp`` outcomes alone,
  through a pluggable :class:`~repro.core.refine.RefineEngine` — the
  ``heap`` reference (one scalar oracle call per comparison, O(log k)
  per candidate) or the default ``vectorized`` engine (one contiguous
  ``C_DCE`` gather + batched sign kernels, bit-identical ids).

Total server cost: ``O(d (log n + k' log k))`` per query (Section V-C).

The ``k'`` knob trades accuracy for refine cost (Figure 5); ``beta``
bounds the filter phase's candidate quality (Figure 4).

The batch entry point is :func:`execute_batch`: parameter resolution,
the key check, and liveness-mask construction happen once per batch, and
the queries then **fan out over the shared worker pool**
(:mod:`repro.core.executor`) — numpy's distance and DCE kernels release
the GIL, so independent queries overlap on multi-core hosts.  Results
come back in query order and a failing query neither kills nor reorders
its siblings (the first failure by query position is re-raised after the
gather).  The seed-era :func:`filter_and_refine` / :func:`filter_only`
signatures remain as thin wrappers over the same engine.

The engine is index-shape agnostic: it calls ``index.filter_search``, so
a monolithic :class:`~repro.core.index.EncryptedIndex` answers from its
single backend while a
:class:`~repro.core.sharding.ShardedEncryptedIndex` scatter-gathers the
filter phase across its shards (and the result carries per-shard
timings).  The refine phase is identical either way — ``C_DCE`` is never
partitioned.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.dce import DCETrapdoor
from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.executor import map_ordered
from repro.core.index import EncryptedIndex
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchReport,
    SearchResult,
    SearchResultBatch,
    resolve_ef_search,
)
from repro.core.refine import RefineEngine, get_refine_engine
from repro.core.sharding import ShardedEncryptedIndex
from repro.hnsw.graph import SearchStats

__all__ = [
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchRequest",
    "SearchReport",
    "SearchResult",
    "SearchResultBatch",
    "filter_and_refine",
    "filter_only",
    "execute_batch",
]


def _run_single(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    sap_vector: np.ndarray,
    trapdoor: DCETrapdoor,
    request: SearchRequest,
    k_prime: int,
    live_mask: np.ndarray,
    engine: RefineEngine,
) -> SearchResult:
    """One query through the staged pipeline; parameters are pre-resolved."""
    ef_search = resolve_ef_search(request.ef_search, k_prime)

    # -- filter stage (Line 1; scatter-gather when the index is sharded) -------
    stats = SearchStats()
    start = time.perf_counter()
    candidate_ids, _, shard_timings = index.filter_search(
        sap_vector, k_prime, ef_search=ef_search, stats=stats
    )
    filter_seconds = time.perf_counter() - start

    # -- mask stage (tombstone liveness; timed apart from the filter) ----------
    start = time.perf_counter()
    if candidate_ids.shape[0]:
        candidate_ids = candidate_ids[live_mask[candidate_ids]]
    mask_seconds = time.perf_counter() - start

    if request.mode == "filter_only":
        return SearchResult(
            ids=candidate_ids[: request.k],
            filter_stats=stats,
            refine_comparisons=0,
            k_prime=k_prime,
            filter_seconds=filter_seconds,
            mask_seconds=mask_seconds,
            request=request,
            shard_timings=shard_timings,
        )

    # -- refine stage (Lines 2-9; always global, over the merged candidates) ---
    start = time.perf_counter()
    outcome = engine.refine(index.dce_database, trapdoor, candidate_ids, request.k)
    refine_seconds = time.perf_counter() - start
    return SearchResult(
        ids=outcome.ids,
        filter_stats=stats,
        refine_comparisons=outcome.comparisons,
        k_prime=k_prime,
        filter_seconds=filter_seconds,
        mask_seconds=mask_seconds,
        refine_seconds=refine_seconds,
        refine_engine=engine.name,
        refine_kernel_seconds=outcome.kernel_seconds,
        request=request,
        shard_timings=shard_timings,
    )


def _check_query_dim(
    index: "EncryptedIndex | ShardedEncryptedIndex", sap: np.ndarray, what: str
) -> None:
    if sap.shape[-1] != index.dim:
        raise ParameterError(
            f"{what} has dimension {sap.shape[-1]}, but the index holds "
            f"{index.dim}-dimensional ciphertexts"
        )


def execute_batch(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    batch: EncryptedQueryBatch,
    default_ratio_k: int = 8,
    ratio_k: int | None = None,
    ef_search: int | None = None,
    mode: str | None = None,
    refine_engine: "str | RefineEngine | None" = None,
) -> SearchResultBatch:
    """Answer a whole encrypted batch through one pipelined, amortized pass.

    Parameter resolution, the trapdoor key check, and the liveness mask
    are computed once; the queries then run Algorithm 2 concurrently on
    the shared worker pool (:func:`repro.core.executor.map_ordered`),
    with results gathered in query order.  Per-query error isolation:
    every query runs to completion even if a sibling raises, and the
    first failure by query position is re-raised after the gather.
    Results are element-wise identical to answering the batch's queries
    one at a time.

    ``refine_engine`` selects the refine-stage implementation by name
    (``"heap"`` or ``"vectorized"``); ``None`` uses the default
    (:data:`repro.core.refine.DEFAULT_REFINE_ENGINE`).

    The returned batch records the fan-out's start-to-finish wall clock
    in ``wall_seconds``; the per-query stage timings are thread-local
    and can sum to more than that when queries overlap.
    """
    _check_query_dim(index, batch.sap_vectors, "query batch")
    engine = get_refine_engine(refine_engine)
    request = batch.request.resolve(
        default_ratio_k, ratio_k=ratio_k, ef_search=ef_search, mode=mode
    )
    k_prime = request.k_prime
    if request.mode == "full":
        if batch.trapdoor_vectors.shape[1] == 0:
            raise ParameterError(
                "batch carries no trapdoors (encrypted for filter_only mode); "
                "re-encrypt with mode='full' to refine"
            )
        if batch.key_id != index.dce_database.key_id:
            raise KeyMismatchError("query trapdoors do not match the index's DCE key")
    live_mask = index.live_mask()
    key_id = batch.key_id

    def run_query(i: int) -> SearchResult:
        return _run_single(
            index,
            batch.sap_vectors[i],
            DCETrapdoor(batch.trapdoor_vectors[i], key_id),
            request,
            k_prime,
            live_mask,
            engine,
        )

    fanout_start = time.perf_counter()
    results = map_ordered(run_query, range(len(batch)))
    wall_seconds = time.perf_counter() - fanout_start
    return SearchResultBatch(results, request=request, wall_seconds=wall_seconds)


def filter_only(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    ef_search: int | None = None,
    k_prime: int | None = None,
) -> SearchResult:
    """The filter phase alone — the paper's ``HNSW(filter)`` reference.

    Runs k'-ANNS on the encrypted filter backend and returns the top-k of
    the candidates *by approximate distance*, skipping DCE entirely.
    Used by Figure 4 (beta tuning) and as the Figure 6 lower bound.
    """
    k_prime = k_prime if k_prime is not None else query.k
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="filter_only")
    return _run_single(
        index,
        query.sap_vector,
        query.trapdoor,
        request,
        k_prime,
        index.live_mask(),
        get_refine_engine(None),
    )


def filter_and_refine(
    index: "EncryptedIndex | ShardedEncryptedIndex",
    query: EncryptedQuery,
    k_prime: int,
    ef_search: int | None = None,
    refine_engine: "str | RefineEngine | None" = None,
) -> SearchResult:
    """Algorithm 2: k'-ANNS filter on the encrypted backend, DCE refine.

    Parameters
    ----------
    index:
        The server's encrypted index.
    query:
        The encrypted query pair.
    k_prime:
        Filter-phase candidate count ``k' >= k`` (``Ratio_k * k`` in the
        paper's parameterization).
    ef_search:
        Filter-phase beam width; values below ``k'`` are raised to ``k'``
        (see :func:`repro.core.protocol.resolve_ef_search`).
    refine_engine:
        Refine-stage engine name or instance (``None`` = the default
        ``vectorized`` engine; see :mod:`repro.core.refine`).

    Returns
    -------
    SearchResult
        The k result ids plus full phase instrumentation.
    """
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    _check_query_dim(index, query.sap_vector, "query")
    if query.trapdoor.ciphertext_dim == 0:
        raise ParameterError(
            "query carries no trapdoor (encrypted for filter_only mode); "
            "re-encrypt with mode='full' to refine"
        )
    if query.trapdoor.key_id != index.dce_database.key_id:
        raise KeyMismatchError("query trapdoor does not match the index's DCE key")
    request = SearchRequest(k=query.k, ef_search=ef_search, mode="full")
    return _run_single(
        index,
        query.sap_vector,
        query.trapdoor,
        request,
        k_prime,
        index.live_mask(),
        get_refine_engine(refine_engine),
    )
