"""Filter-and-refine search (Section V-B, Algorithm 2).

Given the encrypted query pair — the DCPE ciphertext ``C_SAP(q)`` for the
filter phase and the DCE trapdoor ``T_q`` for the refine phase — the
server:

* **filter**: runs k'-ANNS (``k' = ratio_k * k > k``) on the HNSW graph
  over ``C_SAP``, using ordinary Euclidean distances on DCPE ciphertexts
  (same cost as plaintext distances), yielding high-quality candidates;
* **refine**: maintains a k-bounded max-heap ordered *only* by DCE
  ``DistanceComp`` outcomes, offering each candidate in turn; O(log k)
  comparisons per offer, each comparison O(d).

Total server cost: ``O(d (log n + k' log k))`` per query (Section V-C).

The ``k'`` knob trades accuracy for refine cost (Figure 5); ``beta``
bounds the filter phase's candidate quality (Figure 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.dce import DCETrapdoor, distance_comp
from repro.core.errors import KeyMismatchError, ParameterError
from repro.core.index import EncryptedIndex
from repro.hnsw.graph import SearchStats
from repro.hnsw.heap import ComparisonMaxHeap

__all__ = ["EncryptedQuery", "SearchReport", "filter_and_refine", "filter_only"]


@dataclass(frozen=True)
class EncryptedQuery:
    """What the user sends the server: ``(C_SAP(q), T_q, k)`` (Figure 1).

    Attributes
    ----------
    sap_vector:
        The DCPE ciphertext of the query (filter phase).
    trapdoor:
        The DCE trapdoor of the query (refine phase).
    k:
        Number of neighbors requested.
    """

    sap_vector: np.ndarray
    trapdoor: DCETrapdoor
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ParameterError(f"k must be positive, got {self.k}")

    def upload_bytes(self) -> int:
        """Size of the query message.

        ``C_SAP(q)`` travels as float32 (d * 4 bytes), the trapdoor as
        float64 ((2d+16) * 8 bytes) and ``k`` as a 4-byte integer.
        """
        d = int(self.sap_vector.shape[0])
        return 4 * d + 8 * self.trapdoor.ciphertext_dim + 4


@dataclass
class SearchReport:
    """Instrumentation of one filter-and-refine query.

    Attributes
    ----------
    ids:
        The k returned neighbor ids (server-side ids; the user maps them
        back to records).
    filter_stats:
        Graph-search instrumentation (distance computations, hops).
    refine_comparisons:
        DCE ``DistanceComp`` invocations in the refine phase.
    k_prime:
        The number of filter-phase candidates refined.
    filter_seconds / refine_seconds:
        Wall-clock split of the two phases.
    """

    ids: np.ndarray
    filter_stats: SearchStats = field(default_factory=SearchStats)
    refine_comparisons: int = 0
    k_prime: int = 0
    filter_seconds: float = 0.0
    refine_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Wall-clock total of both phases."""
        return self.filter_seconds + self.refine_seconds

    def download_bytes(self) -> int:
        """Result message size: 4 bytes per returned id (Section V-C)."""
        return 4 * int(self.ids.shape[0])


def filter_only(
    index: EncryptedIndex,
    query: EncryptedQuery,
    ef_search: int | None = None,
    k_prime: int | None = None,
) -> SearchReport:
    """The filter phase alone — the paper's ``HNSW(filter)`` reference.

    Runs k'-ANNS on the DCPE/HNSW index and returns the top-k of the
    candidates *by approximate distance*, skipping DCE entirely.  Used by
    Figure 4 (beta tuning) and as the Figure 6 lower bound.
    """
    k_prime = k_prime if k_prime is not None else query.k
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    stats = SearchStats()
    start = time.perf_counter()
    ids, _ = index.graph.search(
        query.sap_vector,
        k_prime,
        ef_search=ef_search,
        stats=stats,
    )
    ids = np.array([i for i in ids if index.is_live(int(i))], dtype=np.int64)
    elapsed = time.perf_counter() - start
    return SearchReport(
        ids=ids[: query.k],
        filter_stats=stats,
        refine_comparisons=0,
        k_prime=k_prime,
        filter_seconds=elapsed,
    )


def filter_and_refine(
    index: EncryptedIndex,
    query: EncryptedQuery,
    k_prime: int,
    ef_search: int | None = None,
) -> SearchReport:
    """Algorithm 2: k'-ANNS filter on DCPE/HNSW, DCE comparison refine.

    Parameters
    ----------
    index:
        The server's encrypted index.
    query:
        The encrypted query pair.
    k_prime:
        Filter-phase candidate count ``k' >= k`` (``Ratio_k * k`` in the
        paper's parameterization).
    ef_search:
        HNSW beam width; defaults to ``max(k', 2m)`` inside the graph.

    Returns
    -------
    SearchReport
        The k result ids plus full phase instrumentation.
    """
    if k_prime < query.k:
        raise ParameterError(f"k' ({k_prime}) must be >= k ({query.k})")
    if query.trapdoor.key_id != index.dce_database.key_id:
        raise KeyMismatchError("query trapdoor does not match the index's DCE key")

    # -- filter phase (Line 1) ------------------------------------------------
    stats = SearchStats()
    start = time.perf_counter()
    effective_ef = ef_search if ef_search is not None else None
    if effective_ef is not None and effective_ef < k_prime:
        effective_ef = k_prime
    candidate_ids, _ = index.graph.search(
        query.sap_vector,
        k_prime,
        ef_search=effective_ef,
        stats=stats,
    )
    candidates = [int(i) for i in candidate_ids if index.is_live(int(i))]
    filter_seconds = time.perf_counter() - start

    # -- refine phase (Lines 2-9) -----------------------------------------------
    start = time.perf_counter()
    dce = index.dce_database
    trapdoor = query.trapdoor

    def is_farther(a: int, b: int) -> bool:
        return distance_comp(dce[a], dce[b], trapdoor) >= 0.0

    heap = ComparisonMaxHeap(query.k, is_farther)
    for candidate in candidates:
        heap.offer(candidate)
    refine_seconds = time.perf_counter() - start

    return SearchReport(
        ids=np.array(heap.items(), dtype=np.int64),
        filter_stats=stats,
        refine_comparisons=heap.oracle_calls,
        k_prime=k_prime,
        filter_seconds=filter_seconds,
        refine_seconds=refine_seconds,
    )
