"""The multi-process data plane: shard-affine workers over shared memory.

The thread executor (:mod:`repro.core.executor`) overlaps queries well
when the kernels release the GIL, but the filter phase's graph walks
are pure Python — on a many-core host a thread pool leaves the
hardware idle.  This module is the process-based execution mode: the
server publishes its ciphertext matrices (every shard's ``C_SAP``
slice and the global ``C_DCE`` block) into one shared-memory arena
(:mod:`repro.core.shm`) and spawns worker processes that attach the
arena **zero-copy** and rebuild their filter backends as numpy views
over it.  Graph backends also get their compiled flat CSR search mode
(:meth:`~repro.hnsw.graph.HNSWIndex.search_mode_arrays`) published in
the same arena, so workers adopt the parent's snapshot zero-copy
instead of recompiling the adjacency per process.  Per batch, only the
query ciphertext block crosses the process boundary going out and only
top-k' id/score arrays come back.  The filter engine
(:mod:`repro.core.filterengine`) travels by name inside the filter
message and is resolved worker-side, so ``--filter-engine`` behaves
identically under both executors.

Affinity and routing:

* **Sharded index** — shard ``s`` is owned by worker ``s % workers``
  and only that worker rebuilds its backend, so a shard's graph
  adjacency stays hot in exactly one process's cache.  A filter round
  ships the whole query block to every shard-owning worker; the parent
  merges the per-shard candidates with the same distance-then-id
  lexsort as the thread path.
* **Monolithic index** — every worker rebuilds the single backend
  (over the same shared vectors) and the query block is striped across
  workers instead.
* **Refine** — ``C_DCE`` is global, so refine work needs no affinity
  and is dealt round-robin to all workers.

Determinism: a worker's backend is reconstructed through the same
``state_arrays()`` / ``from_state`` hooks persistence round-trips
through (property-tested bit-identical), every search is deterministic
given that state, and the parent-side merge is byte-for-byte the
thread path's merge — so ``executor=processes`` answers are
bit-identical to ``executor=threads`` at any worker count
(``tests/strategies/test_executor_properties.py``).

Fault containment and self-healing: a worker that dies mid-batch
surfaces a :class:`DataPlaneError` on exactly the queries that
depended on it (all of them when sharded — every query needs every
shard; only the dead worker's stripe when monolithic).  The plane then
**restarts the dead worker in place** with capped exponential backoff
instead of declaring itself broken: the worker's specs still point at
the published arena, so a respawn re-attaches zero-copy and the next
batch after a successful restart runs at full width.  While a restart
is pending, monolithic stripes route around the dead worker (degraded
capacity, full availability) and sharded batches fail typed — never a
hang, never a whole-fleet rebuild.  :meth:`health` exposes the
per-worker restart state.  The plane also snapshots an index
fingerprint (row count, tombstones, retired ids) so maintenance
automatically invalidates it.

Lifecycle: ``close()`` is idempotent, tears the workers down, and
unlinks the arena; the arena registry's ``atexit`` backstop covers
abandoned planes.  Workers are spawn-context daemons — no fork, so no
inherited thread-pool state, no leaked locks.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.backends import backend_from_state
from repro.core.dce import DCEEncryptedDatabase, DCETrapdoor
from repro.core.errors import PPANNSError, ParameterError
from repro.core.executor import pool_width
from repro.core.filterengine import get_filter_engine
from repro.core.protocol import ShardTiming
from repro.core.refine import RefineOutcome, get_refine_engine
from repro.core.shm import ShmArena, ShmArrayRef, shared_memory_available
from repro.hnsw.graph import SearchStats

__all__ = [
    "DataPlaneError",
    "ProcessDataPlane",
    "process_plane_available",
]

#: Exit code of a worker killed through the fault-injection hook.
_ABORT_EXIT_CODE = 17

#: Parent-side poll interval while waiting on a worker reply (seconds).
_POLL_SECONDS = 0.05

#: Default worker-restart backoff: first respawn after base seconds,
#: doubling per consecutive failure up to the cap.
DEFAULT_RESTART_BACKOFF_BASE = 0.1
DEFAULT_RESTART_BACKOFF_CAP = 5.0


class DataPlaneError(PPANNSError):
    """A process-plane worker failed or died while holding our work.

    Raised per affected query (the settled batch path delivers it to
    each poisoned query's future) or from plane construction.  A dead
    worker is restarted in place with capped backoff (see
    :meth:`ProcessDataPlane.health`); only queries that depended on it
    while it was down carry this error.
    """


def process_plane_available() -> bool:
    """Whether the process data plane can run on this host.

    Requires working ``multiprocessing.shared_memory``, a spawn start
    method, and a re-runnable ``__main__``.  The last one matters:
    spawn children replay the parent's ``__main__`` from its file path,
    so a program fed to the interpreter through stdin (``python -``, a
    shell heredoc, a REPL paste) has ``__file__ == "<stdin>"`` and its
    children die during bootstrap — worse, CPython's ``Process.start``
    can then deadlock writing the spawn pickle to the dead child
    (the parent still holds the pipe's read end, so the write never
    sees EPIPE).  Declaring the plane unavailable up front turns that
    hang into the documented degrade-to-threads path.  When unavailable
    the server degrades to thread execution (with a one-time warning)
    instead of failing.
    """
    if not shared_memory_available():
        return False
    try:
        multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover - spawn exists on all tier-1 OSes
        return False
    main_module = sys.modules.get("__main__")
    main_file = getattr(main_module, "__file__", None)
    if main_file is not None and not os.path.exists(main_file):
        return False
    return True


@dataclass
class _BackendSpec:
    """Everything a worker needs to rebuild one filter backend.

    ``role`` is ``"shard"`` (sharded index; ``global_ids`` maps local
    backend ids to global ids, plain fancy-indexing) or ``"mono"``
    (monolithic index; ``global_ids`` is the post-compaction
    ``live_ids`` map applied with the thread path's guarded ``where``,
    or ``None`` for the identity case).  ``kind`` is ``None`` for an
    empty shard (no backend yet) — the worker answers it with empty
    candidate arrays, like :meth:`repro.core.sharding.Shard.search`.

    ``search_mode_refs`` carries the published flat CSR search mode of
    a graph backend as alternating ``indptr`` / ``indices`` refs (two
    per layer); the worker adopts the resolved views so the vectorized
    engine never recompiles the adjacency.  ``None`` for backends
    without a search mode (brute force, IVF).
    """

    shard_id: int
    role: str
    kind: "str | None"
    vectors_ref: "ShmArrayRef | None"
    state: "dict[str, np.ndarray] | None"
    global_ids: "np.ndarray | None"
    search_mode_refs: "tuple[ShmArrayRef, ...] | None" = None


def _map_ids(spec: _BackendSpec, local_ids: np.ndarray) -> np.ndarray:
    """Local backend ids -> global ids, exactly as the thread path maps.

    Shards fancy-index their ``global_ids`` (``Shard.search``); the
    monolithic index guards against negative padding ids
    (``EncryptedIndex.filter_search``).  Replicating each verbatim is
    what keeps the modes bit-identical.
    """
    if spec.role == "shard":
        return spec.global_ids[local_ids]
    if spec.global_ids is not None and local_ids.size:
        return np.where(
            local_ids >= 0,
            spec.global_ids[np.clip(local_ids, 0, None)],
            local_ids,
        )
    return local_ids


def _worker_filter(
    built,
    rows: np.ndarray,
    k_prime: int,
    ef_search: "int | None",
    engine_name: str,
):
    """Run every owned backend over every query row; fully instrumented.

    The engine arrives by name and is resolved here, worker-side, so
    the plane serves exactly the registry engine the thread path would
    use.  Backends that advertise a genuinely batched kernel take the
    whole row block through ``engine.search_batch`` (one GEMM for the
    brute-force / IVF paths, with the per-backend wall time smeared
    evenly across the rows); everything else loops the engine's
    per-query path with true per-query timing.
    """
    engine = get_filter_engine(engine_name)
    payload = []
    for spec, backend in built:
        per_query = []
        if (
            backend is not None
            and len(rows) > 1
            and getattr(backend, "batched_kernel", False)
        ):
            stats_list = [SearchStats() for _ in range(len(rows))]
            start = time.perf_counter()
            results = engine.search_batch(
                backend, rows, k_prime, ef_search=ef_search, stats_list=stats_list
            )
            share = (time.perf_counter() - start) / len(rows)
            for (local_ids, dists), stats in zip(results, stats_list):
                per_query.append(
                    (
                        _map_ids(spec, local_ids),
                        dists,
                        share,
                        stats.distance_computations,
                        stats.hops,
                        stats.kernel_seconds,
                    )
                )
        else:
            for row in rows:
                start = time.perf_counter()
                stats = SearchStats()
                if backend is None:
                    ids = np.empty(0, dtype=np.int64)
                    dists = np.empty(0)
                else:
                    local_ids, dists = engine.search(
                        backend, row, k_prime, ef_search=ef_search, stats=stats
                    )
                    ids = _map_ids(spec, local_ids)
                per_query.append(
                    (
                        ids,
                        dists,
                        time.perf_counter() - start,
                        stats.distance_computations,
                        stats.hops,
                        stats.kernel_seconds,
                    )
                )
        payload.append((spec.shard_id, per_query))
    return payload


def _worker_refine(dce: DCEEncryptedDatabase, engine_name: str, key_id, items):
    """Refine each assigned item; per-item error isolation."""
    engine = get_refine_engine(engine_name)
    payload = []
    for slot, trapdoor_vector, candidate_ids, k in items:
        try:
            start = time.perf_counter()
            outcome = engine.refine(
                dce, DCETrapdoor(trapdoor_vector, key_id), candidate_ids, k
            )
            payload.append(
                (
                    slot,
                    "ok",
                    (
                        outcome.ids,
                        outcome.comparisons,
                        outcome.kernel_seconds,
                        time.perf_counter() - start,
                    ),
                )
            )
        except Exception as exc:
            payload.append((slot, "error", f"{type(exc).__name__}: {exc}"))
    return payload


def _worker_diagnostics() -> dict:
    """Startup/ping payload the parent (and the tests) inspect."""
    from repro.core import executor as executor_module

    return {
        "pid": os.getpid(),
        # Under the spawn context the child imports repro fresh, so the
        # parent's lazily created thread pool must not be visible here —
        # the spawn-safety test asserts exactly this.
        "pool_inherited": executor_module._pool is not None,
        "start_method": multiprocessing.get_start_method(allow_none=True),
    }


def _worker_main(conn, init: dict) -> None:
    """Worker process entry point: attach, rebuild, serve the pipe.

    Messages are ``(op, ...)`` tuples; every request gets exactly one
    ``("ok", payload)`` / ``("error", message)`` reply except ``close``
    (clean shutdown) and ``abort`` (fault-injection: die without a
    word, as a real crash would).
    """
    arena = None
    try:
        arena = ShmArena.attach(init["arena"])
        built = []
        for spec in init["specs"]:
            if spec.kind is None:
                built.append((spec, None))
                continue
            vectors = arena.resolve(spec.vectors_ref)
            backend = backend_from_state(spec.kind, vectors, spec.state, copy=False)
            if spec.search_mode_refs:
                resolved = [arena.resolve(ref) for ref in spec.search_mode_refs]
                backend.adopt_search_mode(
                    list(zip(resolved[0::2], resolved[1::2]))
                )
            built.append((spec, backend))
        dce = DCEEncryptedDatabase(
            arena.resolve(init["dce_ref"]), init["dce_key_id"]
        )
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        if arena is not None:
            arena.close()
        return
    conn.send(("ok", _worker_diagnostics()))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            op = message[0]
            if op == "close":
                break
            if op == "abort":
                os._exit(_ABORT_EXIT_CODE)
            try:
                if op == "ping":
                    reply = ("ok", _worker_diagnostics())
                elif op == "filter":
                    _, rows, k_prime, ef_search, engine_name = message
                    reply = (
                        "ok",
                        _worker_filter(built, rows, k_prime, ef_search, engine_name),
                    )
                elif op == "refine":
                    _, engine_name, key_id, items = message
                    reply = ("ok", _worker_refine(dce, engine_name, key_id, items))
                else:
                    reply = ("error", f"unknown op {op!r}")
            except Exception as exc:
                reply = ("error", f"{type(exc).__name__}: {exc}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        arena.close()
        conn.close()


class _Worker:
    """Parent-side handle on one spawned worker (plus restart state)."""

    __slots__ = ("process", "conn", "specs", "dead", "restarts", "next_restart_at")

    def __init__(self, process, conn, specs: "list[_BackendSpec]") -> None:
        self.process = process
        self.conn = conn
        self.specs = specs
        self.dead = False  #: death observed; a respawn is pending
        self.restarts = 0  #: successful in-place respawns so far
        self.next_restart_at: "float | None" = None  #: monotonic respawn time


class ProcessDataPlane:
    """A spawned worker fleet attached to one index snapshot.

    Build one per (index state, worker count); the owning
    :class:`~repro.core.roles.CloudServer` does this lazily and
    rebuilds when :meth:`matches` says the snapshot went stale.  The
    plane is also a context manager (``close`` on exit).

    Parameters
    ----------
    index:
        The :class:`~repro.core.index.EncryptedIndex` or
        :class:`~repro.core.sharding.ShardedEncryptedIndex` snapshot to
        publish.
    workers:
        Worker-process count (``None`` = the executor's
        :func:`~repro.core.executor.pool_width`, which honors
        ``REPRO_WORKERS``).
    restart_backoff_base / restart_backoff_cap:
        The self-healing schedule: a worker observed dead is respawned
        in place no sooner than ``base * 2**consecutive_failures``
        seconds after detection, capped at ``cap`` — so a worker that
        keeps crashing (poisoned state, OOM loop) cannot turn the plane
        into a fork bomb.
    """

    def __init__(
        self,
        index,
        workers: "int | None" = None,
        restart_backoff_base: float = DEFAULT_RESTART_BACKOFF_BASE,
        restart_backoff_cap: float = DEFAULT_RESTART_BACKOFF_CAP,
    ) -> None:
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        if restart_backoff_base <= 0 or restart_backoff_cap < restart_backoff_base:
            raise ParameterError(
                "restart backoff needs 0 < base <= cap, got "
                f"{restart_backoff_base} / {restart_backoff_cap}"
            )
        self._restart_base = float(restart_backoff_base)
        self._restart_cap = float(restart_backoff_cap)
        self._restart_failures: "dict[int, int]" = {}
        self._heal_lock = threading.RLock()
        if not process_plane_available():
            raise DataPlaneError(
                "process data plane unavailable: shared memory or the spawn "
                "start method is missing on this platform"
            )
        self._closed = False
        self._broken = False
        self._index_ref = weakref.ref(index)
        self._fingerprint = _index_fingerprint(index)
        width = workers if workers is not None else pool_width()

        shards = getattr(index, "shards", None)
        specs: "list[_BackendSpec]" = []
        arrays: "list[np.ndarray]" = []
        # Per spec index: the published slot of its vectors and of its
        # CSR search-mode arrays (alternating indptr/indices, two per
        # layer).  Recording slots instead of iterating refs keeps the
        # patch-up below correct with a variable number of arrays per
        # backend.
        vector_slots: "dict[int, int]" = {}
        mode_slots: "dict[int, list[int]]" = {}

        def stage_backend(spec_index: int, backend) -> None:
            vector_slots[spec_index] = len(arrays)
            arrays.append(np.ascontiguousarray(backend.vectors, dtype=np.float64))
            mode_arrays = getattr(backend, "search_mode_arrays", None)
            if mode_arrays is None:
                return
            slots: "list[int]" = []
            for indptr, indices in mode_arrays():
                slots.append(len(arrays))
                arrays.append(np.ascontiguousarray(indptr))
                slots.append(len(arrays))
                arrays.append(np.ascontiguousarray(indices))
            mode_slots[spec_index] = slots

        if shards is not None:
            self._sharded = True
            for shard in shards:
                if shard.backend is None:
                    specs.append(
                        _BackendSpec(shard.shard_id, "shard", None, None, None,
                                     shard.global_ids)
                    )
                    continue
                stage_backend(len(specs), shard.backend)
                specs.append(
                    _BackendSpec(
                        shard.shard_id,
                        "shard",
                        shard.backend.kind,
                        None,  # patched to the published ref below
                        shard.backend.state_arrays(),
                        shard.global_ids,
                    )
                )
        else:
            self._sharded = False
            # One atomic read of the swap-guarded view keeps the backend
            # and its live_ids map coherent even under a concurrent
            # compaction (the same discipline filter_search uses).
            view = index._view
            stage_backend(0, view.backend)
            specs.append(
                _BackendSpec(
                    0,
                    "mono",
                    view.backend.kind,
                    None,
                    view.backend.state_arrays(),
                    view.live_ids,
                )
            )

        dce = index.dce_database
        arrays.append(np.ascontiguousarray(dce.components))
        self._arena = ShmArena.publish(arrays)
        refs = self._arena.refs
        for spec_index, spec in enumerate(specs):
            if spec.kind is not None:
                spec.vectors_ref = refs[vector_slots[spec_index]]
                slots = mode_slots.get(spec_index)
                if slots is not None:
                    spec.search_mode_refs = tuple(refs[slot] for slot in slots)
        self._dce_ref = refs[-1]
        self._dce_key_id = dce.key_id
        self._ctx = multiprocessing.get_context("spawn")

        self._workers: "list[_Worker]" = []
        try:
            assigned: "list[list[_BackendSpec]]" = [[] for _ in range(width)]
            if self._sharded:
                for spec in specs:
                    assigned[spec.shard_id % width].append(spec)
            else:
                for worker_specs in assigned:
                    worker_specs.append(specs[0])
            for worker_specs in assigned:
                self._workers.append(self._spawn(worker_specs))
            # One handshake per worker: backends rebuilt, arena attached.
            # Workers start concurrently; gathering after all spawns
            # overlaps their import + rebuild time.
            for worker_index in range(len(self._workers)):
                reply = self._recv(worker_index)
                if reply[0] != "ok":
                    raise DataPlaneError(
                        f"worker {worker_index} failed to start: {reply[1]}"
                    )
        except BaseException:
            self.close()
            raise

    def _spawn(self, worker_specs: "list[_BackendSpec]") -> _Worker:
        """Start one worker process over the published arena."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        init = {
            "arena": self._arena.name,
            "specs": worker_specs,
            "dce_ref": self._dce_ref,
            "dce_key_id": self._dce_key_id,
        }
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, init), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn, worker_specs)

    # -- accessors ---------------------------------------------------------------

    @property
    def workers(self) -> int:
        """Worker-process count."""
        return len(self._workers)

    @property
    def sharded(self) -> bool:
        """Whether the snapshot is a sharded index."""
        return self._sharded

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def broken(self) -> bool:
        """Whether the plane is unrecoverable (construction-time failure).

        Worker deaths no longer break the plane — they mark the worker
        dead and schedule an in-place respawn (see :meth:`health`).
        """
        return self._broken

    @property
    def arena_name(self) -> str:
        """The shared-memory segment name (diagnostics / tests)."""
        return self._arena.name

    def matches(self, index) -> bool:
        """Whether this plane still serves ``index``'s current state.

        Identity plus a mutation fingerprint — row count, tombstone
        count, retired count — which every maintenance operation
        (insert / delete / compact) necessarily changes, so a stale
        plane can never silently answer for a mutated index.
        """
        return (
            not self._closed
            and not self._broken
            and self._index_ref() is index
            and _index_fingerprint(index) == self._fingerprint
        )

    def ping(self, worker_index: int) -> dict:
        """Round-trip one worker; returns its diagnostics payload.

        The payload carries the worker's pid, spawn start method, and
        whether the parent's lazily built thread pool leaked into it
        (``pool_inherited`` — always ``False`` under spawn; the
        spawn-safety test asserts this).
        """
        if self._closed:
            raise DataPlaneError("data plane is closed")
        self._ensure_workers()
        outcome = self._exchange([worker_index], [("ping",)])[worker_index]
        if isinstance(outcome, Exception):
            raise outcome
        return outcome

    def health(self) -> dict:
        """A point-in-time self-healing snapshot (JSON-ready).

        One entry per worker: pid, liveness, observed-dead flag,
        successful in-place restarts, exit code, and the seconds until
        the next respawn attempt (``None`` when not pending).
        """
        now = time.monotonic()
        workers = []
        with self._heal_lock:
            for index, worker in enumerate(self._workers):
                workers.append(
                    {
                        "worker": index,
                        "pid": worker.process.pid,
                        "alive": worker.process.is_alive(),
                        "dead": worker.dead,
                        "restarts": worker.restarts,
                        "exitcode": worker.process.exitcode,
                        "restart_in_seconds": (
                            None
                            if worker.next_restart_at is None
                            else max(0.0, worker.next_restart_at - now)
                        ),
                    }
                )
        return {
            "closed": self._closed,
            "broken": self._broken,
            "sharded": self._sharded,
            "workers": workers,
        }

    # -- self-healing ------------------------------------------------------------

    def _mark_dead(self, worker_index: int, reschedule: bool = False) -> None:
        """Record a worker death and schedule its in-place respawn.

        The respawn delay doubles with consecutive *failed* restarts
        (``restart_backoff_base`` up to ``restart_backoff_cap``), so a
        crash-looping worker backs off instead of fork-bombing.
        """
        with self._heal_lock:
            worker = self._workers[worker_index]
            if worker.dead and not reschedule:
                return
            worker.dead = True
            failures = self._restart_failures.get(worker_index, 0)
            delay = min(self._restart_cap, self._restart_base * (2.0 ** failures))
            worker.next_restart_at = time.monotonic() + delay
            try:
                worker.conn.close()
            except Exception:
                pass

    def _ensure_workers(self) -> None:
        """Respawn every dead worker whose backoff window has elapsed.

        Runs at batch entry (filter / refine / ping): the plane heals
        lazily, on the traffic that needs it, and a restart that fails
        re-enters the backoff schedule with a doubled delay.
        """
        with self._heal_lock:
            now = time.monotonic()
            for worker_index, worker in enumerate(self._workers):
                if (
                    not worker.dead
                    or worker.next_restart_at is None
                    or now < worker.next_restart_at
                ):
                    continue
                replacement = None
                try:
                    replacement = self._spawn(worker.specs)
                    replacement.restarts = worker.restarts + 1
                    self._workers[worker_index] = replacement
                    reply = self._recv(worker_index)
                    ok = reply[0] == "ok"
                except (DataPlaneError, OSError):
                    ok = False
                if ok:
                    replacement.dead = False
                    replacement.next_restart_at = None
                    self._restart_failures.pop(worker_index, None)
                else:
                    self._restart_failures[worker_index] = (
                        self._restart_failures.get(worker_index, 0) + 1
                    )
                    if replacement is not None and replacement.process.is_alive():
                        replacement.process.terminate()
                        replacement.process.join(timeout=5.0)
                    self._mark_dead(worker_index, reschedule=True)

    # -- the batch data path -----------------------------------------------------

    def filter_batch(
        self,
        sap_rows: np.ndarray,
        k_prime: int,
        ef_search: "int | None",
        engine: "str | None" = None,
    ) -> list:
        """Run the filter phase for a query block across the workers.

        ``engine`` is a registered filter-engine name (``None`` = the
        default) shipped inside the filter message and resolved
        worker-side.  Returns one entry per query row: ``(ids, dists,
        shard_timings, stats, filter_seconds)`` on success or the
        :class:`Exception` that poisoned that query.  Sharded snapshots
        broadcast the block and merge per-shard candidates; monolithic
        snapshots stripe the block across workers.
        """
        if self._closed:
            raise DataPlaneError("data plane is closed")
        self._ensure_workers()
        # Resolve parent-side too: an unknown name fails fast with the
        # thread path's ParameterError instead of a worker error.
        engine_name = get_filter_engine(engine).name
        count = int(sap_rows.shape[0])
        if count == 0:
            return []
        if self._sharded:
            return self._filter_sharded(
                sap_rows, count, k_prime, ef_search, engine_name
            )
        return self._filter_striped(sap_rows, count, k_prime, ef_search, engine_name)

    def _filter_sharded(self, sap_rows, count, k_prime, ef_search, engine_name) -> list:
        targets = [
            index for index, worker in enumerate(self._workers) if worker.specs
        ]
        message = ("filter", sap_rows, k_prime, ef_search, engine_name)
        outcomes = self._exchange(targets, [message] * len(targets))
        failure = next(
            (value for value in outcomes.values() if isinstance(value, Exception)),
            None,
        )
        if failure is not None:
            # Every query needs every shard, so one dead worker poisons
            # the whole block — but only this block; the worker is
            # respawned in place before a later batch.
            return [failure] * count
        per_shard: "dict[int, list]" = {}
        for payload in outcomes.values():
            for shard_id, per_query in payload:
                per_shard[shard_id] = per_query
        results = []
        for query_index in range(count):
            id_parts, dist_parts, timings = [], [], []
            stats = SearchStats()
            total_seconds = 0.0
            for shard_id in sorted(per_shard):
                ids, dists, seconds, computations, hops, kernel_seconds = (
                    per_shard[shard_id][query_index]
                )
                id_parts.append(ids)
                dist_parts.append(dists)
                timings.append(
                    ShardTiming(
                        shard_id=shard_id,
                        seconds=seconds,
                        candidates=int(ids.shape[0]),
                    )
                )
                stats.distance_computations += int(computations)
                stats.hops += int(hops)
                stats.kernel_seconds += kernel_seconds
                total_seconds += seconds
            all_ids = np.concatenate(id_parts)
            all_dists = np.concatenate(dist_parts)
            # The gather merge, byte-for-byte as in
            # ShardedEncryptedIndex.filter_search: global top-k' by
            # approximate distance, ties broken by global id.
            order = np.lexsort((all_ids, all_dists))[:k_prime]
            results.append(
                (
                    all_ids[order],
                    all_dists[order],
                    tuple(timings),
                    stats,
                    total_seconds,
                )
            )
        return results

    def _filter_striped(
        self, sap_rows, count, k_prime, ef_search, engine_name
    ) -> list:
        alive = [
            index for index, worker in enumerate(self._workers) if not worker.dead
        ]
        if not alive:
            error = DataPlaneError(
                "all data-plane workers are down (restarts pending)"
            )
            return [error] * count
        stripe_count = min(len(alive), count)
        stripes = np.array_split(np.arange(count), stripe_count)
        targets, messages, stripe_of = [], [], {}
        for worker_index, stripe in zip(alive, stripes):
            if stripe.size == 0:
                continue
            targets.append(worker_index)
            messages.append(
                ("filter", sap_rows[stripe], k_prime, ef_search, engine_name)
            )
            stripe_of[worker_index] = stripe
        outcomes = self._exchange(targets, messages)
        results: list = [None] * count
        for worker_index in targets:
            payload = outcomes[worker_index]
            stripe = stripe_of[worker_index]
            if isinstance(payload, Exception):
                for query_index in stripe:
                    results[int(query_index)] = payload
                continue
            ((_, per_query),) = payload
            for position, query_index in enumerate(stripe):
                ids, dists, seconds, computations, hops, kernel_seconds = (
                    per_query[position]
                )
                stats = SearchStats(
                    distance_computations=int(computations),
                    hops=int(hops),
                    kernel_seconds=kernel_seconds,
                )
                results[int(query_index)] = (ids, dists, None, stats, seconds)
        return results

    def refine_batch(self, items: Sequence, engine_name: str, key_id) -> list:
        """Refine ``(trapdoor_vector, candidate_ids, k)`` items round-robin.

        Returns one entry per item: ``(RefineOutcome, refine_seconds)``
        or the :class:`Exception` that poisoned the item.  ``C_DCE`` is
        global, so any worker can take any item; round-robin keeps the
        deal deterministic.
        """
        if self._closed:
            raise DataPlaneError("data plane is closed")
        self._ensure_workers()
        if not items:
            return []
        alive = [
            index for index, worker in enumerate(self._workers) if not worker.dead
        ]
        if not alive:
            error = DataPlaneError(
                "all data-plane workers are down (restarts pending)"
            )
            return [error] * len(items)
        assigned: "dict[int, list]" = {}
        for slot, (trapdoor_vector, candidate_ids, k) in enumerate(items):
            assigned.setdefault(alive[slot % len(alive)], []).append(
                (slot, trapdoor_vector, candidate_ids, k)
            )
        targets = sorted(assigned)
        messages = [
            ("refine", engine_name, key_id, assigned[worker_index])
            for worker_index in targets
        ]
        outcomes = self._exchange(targets, messages)
        results: list = [None] * len(items)
        for worker_index, message in zip(targets, messages):
            payload = outcomes[worker_index]
            if isinstance(payload, Exception):
                for slot, *_ in message[3]:
                    results[slot] = payload
                continue
            for slot, status, data in payload:
                if status == "ok":
                    ids, comparisons, kernel_seconds, seconds = data
                    results[slot] = (
                        RefineOutcome(
                            ids=ids,
                            comparisons=comparisons,
                            kernel_seconds=kernel_seconds,
                        ),
                        seconds,
                    )
                else:
                    results[slot] = DataPlaneError(
                        f"refine failed in worker {worker_index}: {data}"
                    )
        return results

    # -- transport ---------------------------------------------------------------

    def _exchange(self, targets: "list[int]", messages: "list") -> dict:
        """Send ``messages[i]`` to ``targets[i]``; gather every reply.

        Sends complete before any receive so the workers run
        concurrently.  Each entry of the returned dict is the reply
        payload or the :class:`DataPlaneError` for that worker.
        """
        outcomes: dict = {}
        pending = []
        for worker_index, message in zip(targets, messages):
            worker = self._workers[worker_index]
            if worker.dead:
                outcomes[worker_index] = DataPlaneError(
                    f"worker {worker_index} is down; restart pending "
                    "(see health())"
                )
                continue
            try:
                worker.conn.send(message)
                pending.append(worker_index)
            except Exception as exc:
                self._mark_dead(worker_index)
                outcomes[worker_index] = DataPlaneError(
                    f"worker {worker_index} is unreachable: {exc}"
                )
        for worker_index in pending:
            try:
                reply = self._recv(worker_index)
            except DataPlaneError as exc:
                outcomes[worker_index] = exc
                continue
            if reply[0] == "error":
                outcomes[worker_index] = DataPlaneError(
                    f"worker {worker_index}: {reply[1]}"
                )
            else:
                outcomes[worker_index] = reply[1]
        return outcomes

    def _recv(self, worker_index: int):
        """One reply from a worker; a dead worker raises, never hangs."""
        worker = self._workers[worker_index]
        try:
            while not worker.conn.poll(_POLL_SECONDS):
                if not worker.process.is_alive():
                    # Data already flushed into the pipe is still
                    # readable after death; only a silent exit with an
                    # empty pipe is a crash.
                    if worker.conn.poll(0):
                        break
                    self._mark_dead(worker_index)
                    raise DataPlaneError(
                        f"worker {worker_index} (pid {worker.process.pid}) died "
                        f"mid-batch (exit code {worker.process.exitcode})"
                    )
            return worker.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            self._mark_dead(worker_index)
            raise DataPlaneError(
                f"worker {worker_index} (pid {worker.process.pid}) died "
                f"mid-batch: {type(exc).__name__}"
            ) from exc

    # -- fault injection ----------------------------------------------------------

    def kill_worker(self, worker_index: int) -> None:
        """Make one worker exit without replying (crash-path testing).

        The next batch that depends on the worker settles its queries
        with :class:`DataPlaneError`; the plane then respawns the worker
        in place after its restart backoff.  Blocks until the process is
        gone.
        """
        worker = self._workers[worker_index]
        try:
            worker.conn.send(("abort",))
        except Exception:
            pass
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():  # pragma: no cover - abort failed
            worker.process.terminate()
            worker.process.join(timeout=5.0)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers, release and unlink the arena (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("close",))
            except Exception:
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._arena.close()
        self._arena.unlink()

    def __enter__(self) -> "ProcessDataPlane":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _index_fingerprint(index) -> tuple:
    """The mutation fingerprint :meth:`ProcessDataPlane.matches` compares.

    ``(rows, tombstones, retired)`` can never repeat across a sequence
    of maintenance operations: rows and retired only grow, and at any
    fixed (rows, retired) the tombstone count only grows (it shrinks
    solely through compaction, which grows retired).
    """
    return (
        int(index.sap_vectors.shape[0]),
        len(index.tombstones),
        len(index.retired),
    )
