"""Incremental persistence: the journaled v4 directory store.

Formats v1-v3 (:mod:`repro.core.persistence`) rewrite the whole index
file on every save, so a single insert into an n-vector index costs
O(n·d) disk work.  The v4 store makes mutations O(d): the index is a
**directory** holding an immutable *base* snapshot plus an append-only
*journal* of delta segments, one mutation per segment::

    index.d/
        MANIFEST.json           <- the atomic commit point
        base-<gen>.npz          <- a full v2/v3 payload (persistence)
        journal/
            seg-<gen>-<seq>.npz <- one insert/delete delta each

Loading applies the base and then replays the journal forward; the
result is **bit-identical** to saving and reloading the live index (the
only randomness on the mutation path — the HNSW level draw — is
recorded in the insert segment and forced on replay).

Durability protocol (the fstransactions idiom):

* every file — base, segment, manifest — is published by
  *write-new-then-rename*: the bytes go to a ``.tmp`` sibling, are
  fsynced, and ``os.replace`` moves them into place (followed by a
  directory fsync);
* a mutation first publishes its segment, then publishes a manifest
  listing it.  A crash between the two leaves an *orphan* segment the
  manifest never names — ignored on load;
* compaction / base rewrite first publishes the new base, then a
  manifest pointing at it with an empty segment list, then unlinks the
  superseded generation's files.  A crash before the manifest lands
  keeps the old generation fully intact.

Consequently a crash at *any* write, rename or fsync leaves the store
loadable at either the pre-mutation or post-mutation state — never a
torn one.  The crash-injection suite (``tests/persistence``) sweeps
every fault point to enforce exactly that.

Every manifest entry carries a BLAKE2b checksum of the named file's
bytes; a mismatch on load raises
:class:`~repro.core.errors.CiphertextFormatError` instead of
resurrecting silently corrupted state.

All OS-level primitives go through a :class:`FileOps` instance — the
seam ``tests/persistence/faultfs.py`` subclasses to inject failures at
the Nth write/rename/fsync.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.dce import DCECiphertext
from repro.core.errors import CiphertextFormatError, KeyMismatchError
from repro.core.persistence import _index_arrays, _index_from_mapping

__all__ = [
    "FileOps",
    "IndexJournal",
    "JournalStats",
    "JOURNAL_FORMAT_VERSION",
    "segment_payload_floats",
]

#: The directory-store format version recorded in MANIFEST.json.
JOURNAL_FORMAT_VERSION = 4


def segment_payload_floats(dim: int) -> int:
    """Float64 count of one *insert* segment's ciphertext payload.

    The segment carries the inserted vector's DCPE ciphertext
    (``sap_row``, ``d`` floats) and its DCE ciphertext
    (``dce_components``, ``4 x (2d+16)`` floats): ``d + 4*(2d+16) =
    9d + 64`` — the O(d) disk cost per mutation that replaces the
    O(n*d) full-rewrite cost of the v1-v3 snapshot formats.  Delete
    segments carry no ciphertexts at all.  Normative formula; see
    ``docs/FORMATS.md``.
    """
    return dim + 4 * (2 * dim + 16)

_MANIFEST_NAME = "MANIFEST.json"
_JOURNAL_DIR = "journal"
#: BLAKE2b digest size (bytes) for file checksums in the manifest.
_DIGEST_SIZE = 16


class FileOps:
    """The OS-primitive seam every journal write goes through.

    The default implementation is the real thing; the crash-injection
    harness substitutes a subclass that raises after N primitive calls,
    simulating power loss at that exact point.  Keeping the vocabulary
    this small (write / fsync / replace / fsync_dir / unlink) is what
    makes "sweep every fault point" a finite, exhaustive loop.
    """

    def write(self, fh, data: bytes) -> None:
        """Write ``data`` to an open binary file handle."""
        fh.write(data)

    def fsync(self, fh) -> None:
        """Flush ``fh``'s bytes to stable storage."""
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically rename ``src`` over ``dst`` (POSIX rename)."""
        os.replace(src, dst)

    def fsync_dir(self, directory: Path) -> None:
        """Persist a directory entry (the rename itself)."""
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def unlink(self, path: Path) -> None:
        """Remove a superseded file."""
        os.unlink(path)

    # -- composed operation ----------------------------------------------------

    def write_atomic(self, path: Path, data: bytes) -> None:
        """Publish ``data`` at ``path`` via write-new-then-rename.

        The commit point is the rename: readers either see the old file
        (or none) or the complete new bytes, never a prefix.
        """
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            self.write(fh, data)
            self.fsync(fh)
        self.replace(tmp, path)
        self.fsync_dir(path.parent)


def _checksum(data: bytes) -> str:
    """BLAKE2b-128 hex digest of a file's full byte content."""
    return hashlib.blake2b(data, digest_size=_DIGEST_SIZE).hexdigest()


def _npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    """Serialize an array payload to compressed-npz bytes in memory."""
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


def _npz_mapping(data: bytes) -> dict[str, np.ndarray]:
    """Decode compressed-npz bytes back into a plain array mapping."""
    try:
        with np.load(io.BytesIO(data)) as npz:
            return {key: npz[key] for key in npz.files}
    except (ValueError, OSError) as exc:  # zip/npy framing damage
        raise CiphertextFormatError(f"unreadable npz payload: {exc}") from exc


@dataclass(frozen=True)
class JournalStats:
    """Size/shape accounting for ``info``-style reporting."""

    path: str
    generation: int
    num_segments: int
    base_bytes: int
    journal_bytes: int

    @property
    def total_bytes(self) -> int:
        """Base plus journal footprint on disk."""
        return self.base_bytes + self.journal_bytes


class IndexJournal:
    """A v4 journaled index store rooted at one directory.

    Create one over a live index with :meth:`create`, reattach to an
    existing store with :meth:`open`, materialize the current state with
    :meth:`load`.  Mutations are recorded with :meth:`append_insert` /
    :meth:`append_delete` (normally via the ``journal=`` parameter of
    :mod:`repro.core.maintenance`); :meth:`rewrite_base` folds the
    journal into a fresh base after a compaction.
    """

    def __init__(self, root: Path, manifest: dict, ops: FileOps) -> None:
        self._root = Path(root)
        self._manifest = manifest
        self._ops = ops

    # -- constructors ----------------------------------------------------------

    @classmethod
    def create(
        cls, root: str | os.PathLike, index, ops: FileOps | None = None
    ) -> "IndexJournal":
        """Initialize a store at ``root`` from a live index (generation 0)."""
        ops = ops if ops is not None else FileOps()
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        (root / _JOURNAL_DIR).mkdir(exist_ok=True)
        journal = cls(root, {}, ops)
        journal._publish_generation(0, index)
        return journal

    @classmethod
    def open(
        cls, root: str | os.PathLike, ops: FileOps | None = None
    ) -> "IndexJournal":
        """Reattach to an existing store (reads the manifest only)."""
        ops = ops if ops is not None else FileOps()
        root = Path(root)
        manifest_path = root / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise CiphertextFormatError(f"no {_MANIFEST_NAME} in {root}")
        try:
            manifest = json.loads(manifest_path.read_bytes())
        except json.JSONDecodeError as exc:
            raise CiphertextFormatError(f"corrupt manifest: {exc}") from exc
        version = manifest.get("format_version")
        if version != JOURNAL_FORMAT_VERSION:
            raise CiphertextFormatError(
                f"unsupported journal format version {version}"
            )
        return cls(root, manifest, ops)

    # -- accessors -------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The store's directory."""
        return self._root

    @property
    def generation(self) -> int:
        """Base generation — bumped by every :meth:`rewrite_base`."""
        return int(self._manifest["generation"])

    @property
    def num_segments(self) -> int:
        """Journal segments recorded on top of the current base."""
        return len(self._manifest["segments"])

    def stats(self) -> JournalStats:
        """On-disk accounting (used by ``repro-cli info``)."""
        base_bytes = (self._root / self._manifest["base"]).stat().st_size
        journal_bytes = sum(
            (self._root / entry["name"]).stat().st_size
            for entry in self._manifest["segments"]
        )
        return JournalStats(
            path=str(self._root),
            generation=self.generation,
            num_segments=self.num_segments,
            base_bytes=int(base_bytes),
            journal_bytes=int(journal_bytes),
        )

    # -- reading ---------------------------------------------------------------

    def _read_checked(self, name: str, expected_checksum: str) -> bytes:
        path = self._root / name
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise CiphertextFormatError(
                f"manifest names missing file {name!r}"
            ) from exc
        if _checksum(data) != expected_checksum:
            raise CiphertextFormatError(
                f"checksum mismatch for {name!r} — file is corrupt"
            )
        return data

    def load(self):
        """Materialize the store: load the base, replay every segment.

        The result is bit-identical (persisted-array-for-array) to the
        live index the mutations were applied to.
        """
        manifest = self._manifest
        base = _npz_mapping(
            self._read_checked(manifest["base"], manifest["base_checksum"])
        )
        index = _index_from_mapping(base)
        for entry in manifest["segments"]:
            segment = _npz_mapping(
                self._read_checked(entry["name"], entry["checksum"])
            )
            self._replay_segment(index, segment, entry["name"])
        return index

    @staticmethod
    def _replay_segment(index, segment: dict, name: str) -> None:
        op = str(segment["op"][0])
        if op == "insert":
            sap_row = np.asarray(segment["sap_row"], dtype=np.float64)
            key_id = int(segment["dce_key_id"][0])
            if key_id != index.dce_database.key_id:
                raise KeyMismatchError(
                    f"segment {name!r} was encrypted under a different key"
                )
            ciphertext = DCECiphertext(
                np.asarray(segment["dce_components"]), key_id
            )
            level = int(segment["level"][0])
            new_id = index.backend_insert(
                sap_row, level=None if level < 0 else level
            )
            index._append(sap_row, index.dce_database.append(ciphertext))
            recorded = int(segment["global_id"][0])
            if new_id != recorded:
                raise CiphertextFormatError(
                    f"segment {name!r} expected global id {recorded}, "
                    f"replay assigned {new_id}"
                )
        elif op == "delete":
            vector_id = int(segment["vector_id"][0])
            if not index.is_live(vector_id):
                raise CiphertextFormatError(
                    f"segment {name!r} deletes id {vector_id}, "
                    f"which is not live at this point of the journal"
                )
            index.backend_mark_deleted(vector_id)
            index._mark_deleted(vector_id)
        else:
            raise CiphertextFormatError(
                f"segment {name!r} has unknown op {op!r}"
            )

    # -- writing ---------------------------------------------------------------

    def _write_manifest(self, manifest: dict) -> None:
        data = json.dumps(manifest, indent=2, sort_keys=True).encode()
        self._ops.write_atomic(self._root / _MANIFEST_NAME, data)
        self._manifest = manifest

    def _append_segment(self, arrays: dict[str, np.ndarray]) -> None:
        manifest = self._manifest
        seq = int(manifest["next_seq"])
        name = f"{_JOURNAL_DIR}/seg-{self.generation}-{seq}.npz"
        data = _npz_bytes(arrays)
        # Segment first, manifest second: a crash in between leaves an
        # orphan segment the (old) manifest never names.
        self._ops.write_atomic(self._root / name, data)
        updated = dict(manifest)
        updated["segments"] = list(manifest["segments"]) + [
            {"name": name, "checksum": _checksum(data)}
        ]
        updated["next_seq"] = seq + 1
        self._write_manifest(updated)

    def append_insert(
        self,
        sap_row: np.ndarray,
        ciphertext: DCECiphertext,
        global_id: int,
        level: int,
    ) -> None:
        """Record one insertion (already applied to the live index).

        ``level`` is the HNSW level the insert drew (``-1`` for
        non-HNSW backends), forced on replay for bit-identity.
        """
        self._append_segment(
            {
                "op": np.array(["insert"]),
                "sap_row": np.asarray(sap_row, dtype=np.float64),
                "dce_components": ciphertext.components,
                "dce_key_id": np.array([ciphertext.key_id], dtype=np.int64),
                "global_id": np.array([global_id], dtype=np.int64),
                "level": np.array([level], dtype=np.int64),
            }
        )

    def append_delete(self, vector_id: int) -> None:
        """Record one deletion (already applied to the live index)."""
        self._append_segment(
            {
                "op": np.array(["delete"]),
                "vector_id": np.array([vector_id], dtype=np.int64),
            }
        )

    def _publish_generation(self, generation: int, index) -> None:
        """Write a fresh base + empty-journal manifest for ``generation``."""
        base_name = f"base-{generation}.npz"
        data = _npz_bytes(_index_arrays(index))
        self._ops.write_atomic(self._root / base_name, data)
        self._write_manifest(
            {
                "format_version": JOURNAL_FORMAT_VERSION,
                "generation": generation,
                "base": base_name,
                "base_checksum": _checksum(data),
                "segments": [],
                "next_seq": 0,
            }
        )

    def rewrite_base(self, index) -> None:
        """Fold the journal into a new base generation.

        Called after a compaction (or whenever the journal has grown
        past taste): publishes ``base-<gen+1>`` capturing the live
        index, commits a manifest with an empty segment list, then
        unlinks the superseded generation's files.  A crash before the
        manifest commit leaves the previous generation fully intact; a
        crash during cleanup leaves harmless orphans.
        """
        old = self._manifest
        self._publish_generation(self.generation + 1, index)
        self._ops.unlink(self._root / old["base"])
        for entry in old["segments"]:
            self._ops.unlink(self._root / entry["name"])
