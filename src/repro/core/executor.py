"""The shared worker pool behind the server's parallel hot paths.

Two layers of the serving path fan work out over threads:

* :func:`repro.core.search.execute_batch` — the **pipelined batch
  executor** — fans a batch's queries out so independent queries overlap
  (numpy's distance and DCE kernels release the GIL, so queries make
  real multi-core progress);
* :meth:`repro.core.sharding.ShardedEncryptedIndex.filter_search` —
  the scatter-gather filter phase — fans one query out across shards.

Both layers draw from the **one process-wide**
:class:`~concurrent.futures.ThreadPoolExecutor` owned by this module.
Per-call or per-index pools would leak idle threads across the many
short-lived indexes built by tests and sweeps, and two independent
bounded pools nested inside each other can still oversubscribe the
host.  The pool is created once and never resized or shut down — a
resize would have to retire the old executor while another thread may
still be mapping over it.

Nesting is the classic bounded-pool deadlock: a worker that blocks on
sub-tasks submitted to its own pool can starve when every worker is a
blocked parent.  :func:`map_ordered` therefore runs **inline** whenever
it is called from one of the pool's own workers (detected by thread
name), so a batch fan-out parallelizes across queries and each query's
shard scatter runs serially inside its worker — queries, the coarser
and more abundant unit of work, win the parallelism.

:func:`map_settled` is the fan-out primitive everything else builds on:
results come back in submission order regardless of completion order
(deterministic gather), every task runs to completion even when a
sibling fails, and each input position settles independently to either
its result or the exception it raised.  :func:`map_ordered` is the
raise-on-failure view of the same gather — the first failure *by input
position* is re-raised after every task settled, so one poisoned query
can neither kill nor reorder the others mid-flight.  The online
serving layer (:mod:`repro.serve`) consumes the settled form directly:
a scheduler-formed micro-batch must deliver per-query exceptions to
per-query futures without discarding sibling results.

A third caller — the parallel index-construction pipeline of
:mod:`repro.core.build` — fans per-shard backend builds out over the
same pool, and is the reason the fan-out takes an optional
``max_workers`` cap: build concurrency is a user-facing knob
(``build_workers=``), while serving fan-outs always use the full pool.

Threads are one of two **executor modes** (:data:`EXECUTOR_MODES`).
``threads`` — this module's pool — is the default and the oracle;
``processes`` routes batch execution through the multi-process data
plane of :mod:`repro.core.plane`, whose worker processes attach the
ciphertext matrices via shared memory and sidestep the GIL on the
pure-Python filter hot path.  The knob threads through
:class:`~repro.core.roles.CloudServer` (``executor=`` / ``workers=``),
:class:`~repro.core.scheme.PPANNS`, the serving frontend, and the CLI
(``--executor`` / ``--workers``); results are bit-identical between
the modes at any worker count.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Sequence, TypeVar

from repro.core.errors import ParameterError

__all__ = [
    "EXECUTOR_MODES",
    "Settled",
    "map_settled",
    "map_ordered",
    "pool_width",
    "resolve_executor",
    "shared_pool",
    "in_worker_thread",
]

#: The server's execution modes: the shared thread pool (default, the
#: oracle) and the shared-memory process data plane (repro.core.plane).
EXECUTOR_MODES = ("threads", "processes")


def resolve_executor(mode: "str | None") -> str:
    """Validate an executor-mode knob; ``None`` means ``threads``."""
    if mode is None:
        return "threads"
    if mode not in EXECUTOR_MODES:
        raise ParameterError(
            f"unknown executor {mode!r}; available: {', '.join(EXECUTOR_MODES)}"
        )
    return mode

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

_MAX_WORKERS = 32
_THREAD_PREFIX = "repro-worker"

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def pool_width() -> int:
    """Worker count of the shared pool (sized to the host, capped).

    The ``REPRO_WORKERS`` environment variable overrides the computed
    width — a validated integer >= 1, still capped at the pool maximum
    — so CI jobs and containers can pin concurrency without code
    changes.  The thread pool reads the width once, when it is first
    created; the process data plane re-reads it at every plane build.
    """
    override = os.environ.get("REPRO_WORKERS")
    if override is not None and override.strip():
        try:
            value = int(override)
        except ValueError:
            raise ParameterError(
                f"REPRO_WORKERS must be an integer >= 1, got {override!r}"
            ) from None
        if value < 1:
            raise ParameterError(
                f"REPRO_WORKERS must be an integer >= 1, got {override!r}"
            )
        return min(_MAX_WORKERS, value)
    return min(_MAX_WORKERS, max(4, os.cpu_count() or 1))


def shared_pool() -> ThreadPoolExecutor:
    """The process-wide executor (created once, never shut down)."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=pool_width(),
                thread_name_prefix=_THREAD_PREFIX,
            )
        return _pool


def in_worker_thread() -> bool:
    """Whether the calling thread is one of the shared pool's workers."""
    return threading.current_thread().name.startswith(_THREAD_PREFIX)


@dataclass(frozen=True)
class Settled(Generic[_ResultT]):
    """The independent outcome of one input position of a fan-out.

    Exactly one of ``value`` / ``error`` is meaningful: ``error`` is the
    exception the task raised (``None`` if it completed), ``value`` the
    result it returned.
    """

    value: _ResultT | None = None
    error: Exception | None = None

    @property
    def ok(self) -> bool:
        """Whether this position completed without raising."""
        return self.error is None

    def unwrap(self) -> _ResultT:
        """The value, re-raising the task's exception if it failed."""
        if self.error is not None:
            raise self.error
        return self.value


def map_settled(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    max_workers: int | None = None,
) -> list[Settled[_ResultT]]:
    """Apply ``fn`` to every item on the shared pool; settle each in order.

    The no-raise form of :func:`map_ordered` — the serving scheduler's
    primitive.  Every input position settles independently to a
    :class:`Settled` holding either its result or the exception it
    raised, in **input order**; a failing item neither kills nor
    reorders its siblings, and the caller decides how to deliver the
    failures (the online serving path routes each one to its query's
    future).

    Only :class:`Exception` is settled; ``KeyboardInterrupt`` /
    ``SystemExit`` propagate immediately (remaining pool tasks finish
    and are discarded).

    ``max_workers`` caps how many items are in flight at once (``None``
    means the full pool).  The cap is enforced by submitting the items
    in waves of ``max_workers`` — a slight utilization loss versus a
    streaming semaphore, accepted because the capped callers are coarse
    batch jobs (per-shard index builds), not the serving path.

    Fewer than two items, ``max_workers=1``, or a call made from inside
    one of the pool's own workers (a nested fan-out would deadlock a
    bounded pool), runs inline on the calling thread with identical
    semantics.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    work: Sequence[_ItemT] = list(items)

    def settle_call(item: _ItemT) -> Settled[_ResultT]:
        try:
            return Settled(value=fn(item))
        except Exception as exc:
            return Settled(error=exc)

    if len(work) < 2 or max_workers == 1 or in_worker_thread():
        return [settle_call(item) for item in work]
    wave = len(work) if max_workers is None else max_workers
    outcomes: list[Settled[_ResultT]] = []
    for start in range(0, len(work), wave):
        futures = [
            shared_pool().submit(settle_call, item)
            for item in work[start:start + wave]
        ]
        # settle_call only lets BaseExceptions escape, so future.result()
        # here re-raises KeyboardInterrupt / SystemExit immediately and
        # settles everything else.
        outcomes.extend(future.result() for future in futures)
    return outcomes


def map_ordered(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    max_workers: int | None = None,
) -> list[_ResultT]:
    """Apply ``fn`` to every item on the shared pool; gather in order.

    The parallel analogue of ``[fn(item) for item in items]`` — the
    raise-on-failure view of :func:`map_settled`:

    * results are returned in **input order**, not completion order;
    * every submitted task runs to completion even if a sibling raises
      (per-item error isolation — no half-cancelled pool state);
    * if any task raised, the exception of the **first failing input
      position** is re-raised after the gather, so error reporting is
      deterministic under arbitrary thread scheduling.

    Inline execution (fewer than two items, ``max_workers=1``, nested in
    a pool worker) and the ``max_workers`` wave cap behave exactly as in
    :func:`map_settled`.
    """
    outcomes = map_settled(fn, items, max_workers=max_workers)
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.value for outcome in outcomes]
