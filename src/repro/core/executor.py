"""The shared worker pool behind the server's parallel hot paths.

Two layers of the serving path fan work out over threads:

* :func:`repro.core.search.execute_batch` — the **pipelined batch
  executor** — fans a batch's queries out so independent queries overlap
  (numpy's distance and DCE kernels release the GIL, so queries make
  real multi-core progress);
* :meth:`repro.core.sharding.ShardedEncryptedIndex.filter_search` —
  the scatter-gather filter phase — fans one query out across shards.

Both layers draw from the **one process-wide**
:class:`~concurrent.futures.ThreadPoolExecutor` owned by this module.
Per-call or per-index pools would leak idle threads across the many
short-lived indexes built by tests and sweeps, and two independent
bounded pools nested inside each other can still oversubscribe the
host.  The pool is created once and never resized or shut down — a
resize would have to retire the old executor while another thread may
still be mapping over it.

Nesting is the classic bounded-pool deadlock: a worker that blocks on
sub-tasks submitted to its own pool can starve when every worker is a
blocked parent.  :func:`map_ordered` therefore runs **inline** whenever
it is called from one of the pool's own workers (detected by thread
name), so a batch fan-out parallelizes across queries and each query's
shard scatter runs serially inside its worker — queries, the coarser
and more abundant unit of work, win the parallelism.

:func:`map_ordered` is the single fan-out primitive both layers use:
results come back in submission order regardless of completion order
(deterministic gather), and every task runs to completion even when a
sibling fails — the first failure *by input position* is re-raised
after the gather, so one poisoned query can neither kill nor reorder
the others mid-flight.

A third caller — the parallel index-construction pipeline of
:mod:`repro.core.build` — fans per-shard backend builds out over the
same pool, and is the reason :func:`map_ordered` takes an optional
``max_workers`` cap: build concurrency is a user-facing knob
(``build_workers=``), while serving fan-outs always use the full pool.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["map_ordered", "pool_width", "shared_pool", "in_worker_thread"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

_MAX_WORKERS = 32
_THREAD_PREFIX = "repro-worker"

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None


def pool_width() -> int:
    """Worker count of the shared pool (sized to the host, capped)."""
    return min(_MAX_WORKERS, max(4, os.cpu_count() or 1))


def shared_pool() -> ThreadPoolExecutor:
    """The process-wide executor (created once, never shut down)."""
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=pool_width(),
                thread_name_prefix=_THREAD_PREFIX,
            )
        return _pool


def in_worker_thread() -> bool:
    """Whether the calling thread is one of the shared pool's workers."""
    return threading.current_thread().name.startswith(_THREAD_PREFIX)


def map_ordered(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    max_workers: int | None = None,
) -> list[_ResultT]:
    """Apply ``fn`` to every item on the shared pool; gather in order.

    The parallel analogue of ``[fn(item) for item in items]``:

    * results are returned in **input order**, not completion order;
    * every submitted task runs to completion even if a sibling raises
      (per-item error isolation — no half-cancelled pool state);
    * if any task raised, the exception of the **first failing input
      position** is re-raised after the gather, so error reporting is
      deterministic under arbitrary thread scheduling.

    ``max_workers`` caps how many items are in flight at once (``None``
    means the full pool).  The cap is enforced by submitting the items
    in waves of ``max_workers`` — a slight utilization loss versus a
    streaming semaphore, accepted because the capped callers are coarse
    batch jobs (per-shard index builds), not the serving path.

    Fewer than two items, ``max_workers=1``, or a call made from inside
    one of the pool's own workers (a nested fan-out would deadlock a
    bounded pool), runs inline on the calling thread with identical
    semantics.
    """
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    work: Sequence[_ItemT] = list(items)
    if len(work) < 2 or max_workers == 1 or in_worker_thread():
        return [fn(item) for item in work]
    wave = len(work) if max_workers is None else max_workers
    results: list[_ResultT] = []
    first_error: Exception | None = None
    for start in range(0, len(work), wave):
        futures = [shared_pool().submit(fn, item) for item in work[start:start + wave]]
        for future in futures:
            # Only Exception is isolated; KeyboardInterrupt / SystemExit
            # delivered to the gathering thread must propagate immediately
            # (the remaining tasks finish in the pool and are discarded).
            try:
                results.append(future.result())
            except Exception as exc:
                if first_error is None:
                    first_error = exc
    if first_error is not None:
        raise first_error
    return results
