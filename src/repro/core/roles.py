"""The three participants of the system model (Section II-A, Figure 1).

* :class:`DataOwner` — holds the plaintext database and all secret keys;
  encrypts the database under DCPE and DCE, builds the filter backend
  over the DCPE ciphertexts, and hands the resulting
  :class:`EncryptedIndex` to the server.  Also authorizes users by
  sharing the secret keys (step 0 in Figure 1).
* :class:`QueryUser` — holds the authorized keys; per query it computes
  only the two encryptions (``C_SAP(q)`` at O(d) and ``T_q`` at O(d^2))
  and decodes the returned ids.  This is property P3: minimal user
  involvement.  :meth:`QueryUser.encrypt_queries` encrypts a whole
  workload with matrix-matrix products — one BLAS call per phase instead
  of ``n`` matrix-vector products.
* :class:`CloudServer` — honest-but-curious; stores the encrypted index
  and answers :class:`EncryptedQuery` / :class:`EncryptedQueryBatch`
  messages with Algorithm 2.  It sees ciphertexts, index structure and
  comparison outcomes — nothing else.
"""

from __future__ import annotations

import threading
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.backends import build_backend
from repro.core.build import BUILD_MODES, BuildReport
from repro.core.dcpe import DCPEScheme, dcpe_keygen, DEFAULT_SCALE
from repro.core.dce import DCEScheme, DCETrapdoor
from repro.core.errors import ParameterError
from repro.core.executor import resolve_executor
from repro.core.filterengine import FilterEngine, get_filter_engine
from repro.core.index import EncryptedIndex
from repro.core.keys import DCEKey, DCPEKey
from repro.core.protocol import (
    EncryptedQuery,
    EncryptedQueryBatch,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
)
from repro.core.refine import RefineEngine, get_refine_engine
from repro.core.search import execute_batch, filter_and_refine, filter_only
from repro.core.sharding import (
    SHARD_STRATEGIES,
    ShardedEncryptedIndex,
    build_sharded_index,
)
from repro.hnsw.graph import HNSWParams

__all__ = ["SecretKeyBundle", "DataOwner", "QueryUser", "CloudServer"]


@dataclass(frozen=True)
class SecretKeyBundle:
    """The authorized secret key ``sk`` shared owner -> user (Figure 1 step 0)."""

    dim: int
    dce_key: DCEKey
    dcpe_key: DCPEKey


class DataOwner:
    """Owns the plaintext database and performs all encryption.

    Parameters
    ----------
    dim:
        Plaintext vector dimensionality.
    beta:
        DCPE perturbation budget (privacy/accuracy knob of Figure 4).
    scale:
        DCPE scaling factor; paper default 1024.
    hnsw_params:
        Graph construction parameters (used by the ``hnsw`` backend).
    backend:
        Filter-backend kind to build over the DCPE ciphertexts; one of
        :func:`repro.core.backends.available_backends`.
    backend_params:
        Construction parameters for non-HNSW backends (e.g.
        :class:`~repro.hnsw.nsg.NSGParams`).
    shards:
        Horizontal partition count for the filter structures; ``None``
        or ``1`` builds the monolithic index, ``>= 2`` builds a
        :class:`~repro.core.sharding.ShardedEncryptedIndex` whose filter
        phase scatter-gathers across shards.
    shard_strategy:
        Shard-assignment strategy recorded in the index (one of
        :data:`~repro.core.sharding.SHARD_STRATEGIES`).
    build_workers:
        Concurrency cap for the parallel shard-build fan-out
        (``None`` = the full shared worker pool, ``1`` = build shards
        sequentially).  Bit-identical output at any setting — see
        :mod:`repro.core.build`.
    build_mode:
        HNSW construction path (one of
        :data:`repro.core.build.BUILD_MODES`): the seed's
        ``sequential`` insert loop, or the ``bulk`` vectorized path
        producing a bit-identical graph from the same seed.
    rng:
        Randomness for key generation, encryption and index construction.
    """

    def __init__(
        self,
        dim: int,
        beta: float,
        scale: float = DEFAULT_SCALE,
        hnsw_params: HNSWParams | None = None,
        backend: str = "hnsw",
        backend_params=None,
        shards: int | None = None,
        shard_strategy: str = "round_robin",
        build_workers: int | None = None,
        build_mode: str = "sequential",
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        if shards is not None and shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if shard_strategy not in SHARD_STRATEGIES:
            raise ParameterError(
                f"unknown shard strategy {shard_strategy!r}; "
                f"available: {', '.join(SHARD_STRATEGIES)}"
            )
        if build_workers is not None and build_workers < 1:
            raise ParameterError(
                f"build_workers must be >= 1, got {build_workers}"
            )
        if build_mode not in BUILD_MODES:
            raise ParameterError(
                f"unknown build mode {build_mode!r}; "
                f"available: {', '.join(BUILD_MODES)}"
            )
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dce = DCEScheme(dim, rng=self._rng)
        self._dcpe = DCPEScheme(dim, dcpe_keygen(beta, scale, self._rng), rng=self._rng)
        self._hnsw_params = hnsw_params if hnsw_params is not None else HNSWParams()
        self._backend = backend
        self._backend_params = backend_params
        self._shards = shards
        self._shard_strategy = shard_strategy
        self._build_workers = build_workers
        self._build_mode = build_mode

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    @property
    def rng(self) -> np.random.Generator:
        """The owner's randomness source (shared with index builds)."""
        return self._rng

    @property
    def backend_kind(self) -> str:
        """The filter-backend kind this owner builds."""
        return self._backend

    @property
    def shards(self) -> int | None:
        """Configured shard count (None means monolithic)."""
        return self._shards

    @property
    def shard_strategy(self) -> str:
        """Configured shard-assignment strategy."""
        return self._shard_strategy

    @property
    def build_workers(self) -> int | None:
        """Configured build concurrency (None = the full shared pool)."""
        return self._build_workers

    @property
    def build_mode(self) -> str:
        """Configured HNSW construction path."""
        return self._build_mode

    @property
    def dce_scheme(self) -> DCEScheme:
        """The owner's DCE scheme instance (secret)."""
        return self._dce

    @property
    def dcpe_scheme(self) -> DCPEScheme:
        """The owner's DCPE scheme instance (secret)."""
        return self._dcpe

    def authorize_user(self) -> SecretKeyBundle:
        """Produce the key bundle a query user needs (Figure 1, step 0)."""
        return SecretKeyBundle(
            dim=self._dim,
            dce_key=self._dce.key,
            dcpe_key=self._dcpe.key,
        )

    def build_index(
        self,
        vectors: np.ndarray,
        shards: int | None = None,
        shard_strategy: str | None = None,
        build_workers: int | None = None,
        build_mode: str | None = None,
    ) -> "EncryptedIndex | ShardedEncryptedIndex":
        """Encrypt the database and build the privacy-preserving index.

        This is steps B1 + B2 of Figure 3: DCE ciphertexts, DCPE
        ciphertexts, and the filter backend built over the *DCPE*
        ciphertexts.  ``shards`` / ``shard_strategy`` / ``build_workers``
        / ``build_mode`` override the owner-level configuration for this
        build; with an effective shard count >= 2 the filter structures
        are partitioned into a
        :class:`~repro.core.sharding.ShardedEncryptedIndex` whose shard
        backends build in parallel (the encryption steps are identical —
        shards only ever see ciphertexts).

        The returned index carries a
        :class:`~repro.core.build.BuildReport` (``build_report``) that
        splits the owner-side cost into ``encrypt_seconds`` (B1) and
        ``build_seconds`` (B2), with per-shard timings when sharded.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        shards = shards if shards is not None else self._shards
        strategy = shard_strategy if shard_strategy is not None else (
            self._shard_strategy
        )
        workers = build_workers if build_workers is not None else self._build_workers
        mode = build_mode if build_mode is not None else self._build_mode
        if shards is not None and shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if workers is not None and workers < 1:
            raise ParameterError(f"build_workers must be >= 1, got {workers}")
        if mode not in BUILD_MODES:
            raise ParameterError(
                f"unknown build mode {mode!r}; available: {', '.join(BUILD_MODES)}"
            )
        encrypt_start = time.perf_counter()
        sap = self._dcpe.encrypt_database(vectors)
        dce_db = self._dce.encrypt_database(vectors)
        encrypt_seconds = time.perf_counter() - encrypt_start
        params = self._backend_params
        if params is None and self._backend == "hnsw":
            params = self._hnsw_params
        if shards is not None and shards >= 2:
            index = build_sharded_index(
                sap,
                dce_db,
                backend=self._backend,
                num_shards=shards,
                strategy=strategy,
                rng=self._rng,
                params=params,
                build_workers=workers,
                build_mode=mode,
            )
            index.build_report.encrypt_seconds = encrypt_seconds
            return index
        build_start = time.perf_counter()
        backend = build_backend(
            self._backend, sap, rng=self._rng, params=params, build_mode=mode
        )
        index = EncryptedIndex(sap, backend, dce_db)
        index.build_report = BuildReport(
            backend=self._backend,
            num_vectors=int(sap.shape[0]),
            dim=self._dim,
            shards=1,
            build_mode=mode,
            build_workers=workers,
            encrypt_seconds=encrypt_seconds,
            build_seconds=time.perf_counter() - build_start,
        )
        return index

    def encrypt_vector(self, vector: np.ndarray) -> tuple[np.ndarray, "np.ndarray"]:
        """Encrypt one new vector for insertion: ``(C_SAP(u), C_DCE(u))``.

        Returns the SAP row and the DCE ciphertext (see
        :func:`repro.core.maintenance.insert_vector`).
        """
        sap_row = self._dcpe.encrypt(vector)
        dce_ct = self._dce.encrypt(vector)
        return sap_row, dce_ct


class QueryUser:
    """An authorized query user.

    Per query the user performs exactly two encryptions and nothing else;
    the paper's user-side complexity is O(d^2), dominated by the trapdoor's
    matrix-vector products.  For a workload of n queries,
    :meth:`encrypt_queries` performs the same work as two matrix-matrix
    products, which BLAS executes far faster than n independent matvecs.
    """

    def __init__(
        self,
        keys: SecretKeyBundle,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dim = keys.dim
        self._dce = DCEScheme(keys.dim, rng=self._rng, key=keys.dce_key)
        self._dcpe = DCPEScheme(keys.dim, keys.dcpe_key, rng=self._rng)

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    def _check_query(self, query: np.ndarray) -> np.ndarray:
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise ParameterError(
                f"expected a 1-D query of dimension {self._dim}, "
                f"got shape {query.shape}"
            )
        return query

    def encrypt_query(
        self,
        query: np.ndarray,
        k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
        mode: str = "full",
    ) -> EncryptedQuery:
        """Produce the query message ``(C_SAP(q), T_q, request)``.

        A ``filter_only`` query carries no trapdoor (the filter phase
        never compares under DCE), saving the user the O(d^2) TrapGen.
        """
        query = self._check_query(query)
        request = SearchRequest(k=k, ratio_k=ratio_k, ef_search=ef_search, mode=mode)
        sap = self._dcpe.encrypt(query)
        if mode == "filter_only":
            trapdoor = DCETrapdoor(np.zeros(0), self._dce.key_id)
        else:
            trapdoor = self._dce.trapdoor(query)
        return EncryptedQuery(sap_vector=sap, trapdoor=trapdoor, request=request)

    def encrypt_queries(
        self,
        queries: np.ndarray,
        k: int,
        ratio_k: int | None = None,
        ef_search: int | None = None,
        mode: str = "full",
    ) -> EncryptedQueryBatch:
        """Encrypt a whole ``(n, d)`` query workload in one vectorized pass.

        All DCPE ciphertexts are produced by one scale-and-perturb over
        the matrix and all DCE trapdoors by matrix-matrix products (see
        :meth:`repro.core.dce.DCEScheme.trapdoor_batch`), so the user-side
        cost per query drops well below the n-matvec loop.

        A ``filter_only`` batch carries no trapdoors at all — the filter
        phase never compares under DCE, so the message is just the DCPE
        ciphertexts and the request (and the upload accounting shrinks
        accordingly).
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) query matrix, got shape {queries.shape}"
            )
        request = SearchRequest(k=k, ratio_k=ratio_k, ef_search=ef_search, mode=mode)
        sap = self._dcpe.encrypt_database(queries)
        if mode == "filter_only":
            trapdoors = np.zeros((queries.shape[0], 0))
        else:
            trapdoors = self._dce.trapdoor_batch(queries)
        return EncryptedQueryBatch(sap, trapdoors, self._dce.key_id, request)


class CloudServer:
    """The honest-but-curious server: stores the index, answers queries.

    Parameters
    ----------
    index:
        The encrypted index received from the data owner — monolithic or
        sharded; a :class:`~repro.core.sharding.ShardedEncryptedIndex`
        makes ``answer`` scatter-gather the filter phase across shards.
    default_ratio_k:
        ``k' = ratio_k * k`` used when a query doesn't specify ``k'``.
    refine_engine:
        Refine-stage engine for the full pipeline: an engine name
        (``"heap"`` / ``"vectorized"``) or instance; ``None`` selects
        :data:`repro.core.refine.DEFAULT_REFINE_ENGINE`.  Per-call
        overrides on :meth:`answer` take precedence.
    filter_engine:
        Filter-stage engine (k'-ANNS substrate): an engine name
        (``"heap"`` / ``"vectorized"``) or instance; ``None`` selects
        :data:`repro.core.filterengine.DEFAULT_FILTER_ENGINE`.  Both
        engines are bit-identical — the knob trades the seed's
        per-query beam search against the flat CSR / batched-kernel
        path.  Per-call overrides on :meth:`answer` take precedence.
    executor:
        Batch execution mode (one of
        :data:`repro.core.executor.EXECUTOR_MODES`): ``"threads"``
        (default — the shared thread pool) or ``"processes"`` — the
        shared-memory data plane of :mod:`repro.core.plane`, built
        lazily on the first batch and rebuilt automatically after
        maintenance.  Bit-identical answers either way; when the
        platform can't run the process plane the server degrades to
        threads with a one-time :class:`RuntimeWarning`.
    workers:
        Worker-process count for ``executor="processes"`` (``None`` =
        :func:`repro.core.executor.pool_width`, which honors
        ``REPRO_WORKERS``).  Ignored under threads.
    """

    def __init__(
        self,
        index: "EncryptedIndex | ShardedEncryptedIndex",
        default_ratio_k: int = 8,
        refine_engine: "str | RefineEngine | None" = None,
        filter_engine: "str | FilterEngine | None" = None,
        executor: "str | None" = None,
        workers: "int | None" = None,
    ) -> None:
        if default_ratio_k < 1:
            raise ParameterError(f"ratio_k must be >= 1, got {default_ratio_k}")
        if workers is not None and workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self._index = index
        self._default_ratio_k = default_ratio_k
        self._refine_engine = get_refine_engine(refine_engine)
        self._filter_engine = get_filter_engine(filter_engine)
        self._executor = resolve_executor(executor)
        self._workers = workers
        self._plane = None
        self._plane_lock = threading.Lock()
        self._plane_warned = False

    @property
    def index(self) -> "EncryptedIndex | ShardedEncryptedIndex":
        """The server's stored index."""
        return self._index

    @property
    def default_ratio_k(self) -> int:
        """Default ``k'/k`` multiplier."""
        return self._default_ratio_k

    @property
    def refine_engine(self) -> str:
        """Name of the server's default refine engine."""
        return self._refine_engine.name

    @property
    def filter_engine(self) -> str:
        """Name of the server's default filter engine."""
        return self._filter_engine.name

    @property
    def executor(self) -> str:
        """The server's configured execution mode."""
        return self._executor

    @property
    def workers(self) -> "int | None":
        """Configured process-plane worker count (None = pool width)."""
        return self._workers

    def data_plane(self):
        """The live process data plane, or ``None`` under threads.

        Built lazily on first use and rebuilt whenever the cached plane
        stopped matching the index (maintenance bumps the fingerprint).
        Worker crashes do *not* force a rebuild: the plane respawns dead
        workers in place (see :meth:`ProcessDataPlane.health`).  When
        the platform can't run the plane at all, warns once and
        permanently degrades to threads.
        """
        if self._executor != "processes":
            return None
        # Double-checked: concurrent first callers (a serving scheduler
        # plus a direct answer(), say) must not each spawn a plane —
        # the loser's workers and shared memory would leak unclosed.
        plane = self._plane
        if plane is not None and plane.matches(self._index):
            return plane
        from repro.core.plane import DataPlaneError, ProcessDataPlane

        with self._plane_lock:
            if self._executor != "processes":
                return None
            plane = self._plane
            if plane is not None and plane.matches(self._index):
                return plane
            if plane is not None:
                plane.close()
                self._plane = None
            try:
                self._plane = ProcessDataPlane(
                    self._index, workers=self._workers
                )
            except DataPlaneError as exc:
                if not self._plane_warned:
                    self._plane_warned = True
                    warnings.warn(
                        f"process data plane unavailable ({exc}); "
                        "degrading to thread execution",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                self._executor = "threads"
                return None
            return self._plane

    def invalidate_data_plane(self) -> None:
        """Tear down the cached plane (maintenance / index swap hook)."""
        with self._plane_lock:
            if self._plane is not None:
                self._plane.close()
                self._plane = None

    def close(self) -> None:
        """Release server-held process-plane resources (idempotent)."""
        self.invalidate_data_plane()

    def __enter__(self) -> "CloudServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def default_ratio_for(self, mode: str) -> int:
        """Default ``k'/k`` by mode.

        The server's ``default_ratio_k`` is tuned for the refine pipeline;
        the ``filter_only`` reference method defaults to ``k' = k`` (the
        paper's HNSW(filter)), matching :meth:`answer_filter_only`.
        Public because the serving frontend resolves the same defaults
        for scheduler-formed micro-batches.
        """
        return 1 if mode == "filter_only" else self._default_ratio_k

    # Backward-compatible private spelling.
    _default_ratio_for = default_ratio_for

    def compact(self, rng: "np.random.Generator | None" = None):
        """Drop tombstones from the stored index's filter structures.

        Server-side-only maintenance (like deletion): the rebuild runs
        over ciphertexts the server already holds, so no key material is
        involved.  Returns a
        :class:`~repro.core.maintenance.CompactionReport`.
        """
        from repro.core.maintenance import compact_index

        self.invalidate_data_plane()
        return compact_index(self._index, rng=rng)

    def serving_frontend(
        self,
        max_batch_size: int = 32,
        batch_window_seconds: float = 0.002,
        max_queue_depth: int = 1024,
        cache_size: int = 0,
        refine_engine: "str | None" = None,
        filter_engine: "str | None" = None,
    ):
        """An online :class:`~repro.serve.frontend.ServingFrontend` over this server.

        Requests submitted to the frontend enter a bounded admission
        queue (explicit backpressure via
        :class:`~repro.serve.frontend.QueueFullError`), a scheduler
        thread forms micro-batches by size cap or latency window —
        whichever fires first — and each batch runs the same amortized
        engine as :meth:`answer` on a pre-assembled batch.  See
        :mod:`repro.serve` for the knobs.
        """
        from repro.serve.frontend import ServingFrontend

        return ServingFrontend(
            self,
            max_batch_size=max_batch_size,
            batch_window_seconds=batch_window_seconds,
            max_queue_depth=max_queue_depth,
            cache_size=cache_size,
            refine_engine=refine_engine,
            filter_engine=filter_engine,
        )

    def answer(
        self,
        query: EncryptedQuery | EncryptedQueryBatch,
        ratio_k: int | None = None,
        ef_search: int | None = None,
        refine_engine: "str | RefineEngine | None" = None,
        filter_engine: "str | FilterEngine | None" = None,
    ) -> SearchResult | SearchResultBatch:
        """Run Algorithm 2 for one encrypted query or a whole batch.

        A batch fans out over the shared worker pool and amortizes
        parameter resolution, the key check and liveness filtering
        across queries; its results are element-wise identical to
        answering each query individually.  ``refine_engine`` /
        ``filter_engine`` override the server's configured engines for
        this call (``filter_engine`` applies to every mode — the filter
        phase always runs).
        """
        if refine_engine is not None and query.request.mode == "filter_only":
            raise ParameterError(
                "refine_engine has no effect on a filter_only request "
                "(the refine phase is skipped entirely)"
            )
        engine = (
            self._refine_engine
            if refine_engine is None
            else get_refine_engine(refine_engine)
        )
        fengine = (
            self._filter_engine
            if filter_engine is None
            else get_filter_engine(filter_engine)
        )
        if isinstance(query, EncryptedQueryBatch):
            return execute_batch(
                self._index,
                query,
                default_ratio_k=self._default_ratio_for(query.request.mode),
                ratio_k=ratio_k,
                ef_search=ef_search,
                refine_engine=engine,
                filter_engine=fengine,
                data_plane=self.data_plane(),
            )
        request = query.request.resolve(
            self._default_ratio_for(query.request.mode),
            ratio_k=ratio_k,
            ef_search=ef_search,
        )
        if request.mode == "filter_only":
            return filter_only(
                self._index,
                query,
                ef_search=request.ef_search,
                k_prime=request.k_prime,
                filter_engine=fengine,
            )
        return filter_and_refine(
            self._index,
            query,
            k_prime=request.k_prime,
            ef_search=request.ef_search,
            refine_engine=engine,
            filter_engine=fengine,
        )

    def answer_filter_only(
        self,
        query: EncryptedQuery,
        ef_search: int | None = None,
        k_prime: int | None = None,
        filter_engine: "str | FilterEngine | None" = None,
    ) -> SearchResult:
        """Filter phase only (the paper's HNSW(filter) reference method)."""
        fengine = (
            self._filter_engine
            if filter_engine is None
            else get_filter_engine(filter_engine)
        )
        return filter_only(
            self._index,
            query,
            ef_search=ef_search,
            k_prime=k_prime,
            filter_engine=fengine,
        )

    def answer_batch(
        self,
        queries: "list[EncryptedQuery] | EncryptedQueryBatch",
        ratio_k: int | None = None,
        ef_search: int | None = None,
    ) -> "list[SearchResult] | SearchResultBatch":
        """Answer a batch of encrypted queries.

        Given an :class:`EncryptedQueryBatch` this is the amortized batch
        path and returns a :class:`SearchResultBatch`.  A plain list of
        queries is answered one by one (the seed API) and returns a list.
        """
        if isinstance(queries, EncryptedQueryBatch):
            return self.answer(queries, ratio_k=ratio_k, ef_search=ef_search)
        return [
            self.answer(query, ratio_k=ratio_k, ef_search=ef_search)
            for query in queries
        ]
