"""The three participants of the system model (Section II-A, Figure 1).

* :class:`DataOwner` — holds the plaintext database and all secret keys;
  encrypts the database under DCPE and DCE, builds the HNSW graph over the
  DCPE ciphertexts, and hands the resulting :class:`EncryptedIndex` to the
  server.  Also authorizes users by sharing the secret keys (step 0 in
  Figure 1).
* :class:`QueryUser` — holds the authorized keys; per query it computes
  only the two encryptions (``C_SAP(q)`` at O(d) and ``T_q`` at O(d^2))
  and decodes the returned ids.  This is property P3: minimal user
  involvement.
* :class:`CloudServer` — honest-but-curious; stores the encrypted index
  and answers :class:`EncryptedQuery` messages with Algorithm 2.  It sees
  ciphertexts, graph structure and comparison outcomes — nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dcpe import DCPEScheme, dcpe_keygen, DEFAULT_SCALE
from repro.core.dce import DCEScheme
from repro.core.errors import ParameterError
from repro.core.index import EncryptedIndex
from repro.core.keys import DCEKey, DCPEKey
from repro.core.search import EncryptedQuery, SearchReport, filter_and_refine, filter_only
from repro.hnsw.graph import HNSWIndex, HNSWParams

__all__ = ["SecretKeyBundle", "DataOwner", "QueryUser", "CloudServer"]


@dataclass(frozen=True)
class SecretKeyBundle:
    """The authorized secret key ``sk`` shared owner -> user (Figure 1 step 0)."""

    dim: int
    dce_key: DCEKey
    dcpe_key: DCPEKey


class DataOwner:
    """Owns the plaintext database and performs all encryption.

    Parameters
    ----------
    dim:
        Plaintext vector dimensionality.
    beta:
        DCPE perturbation budget (privacy/accuracy knob of Figure 4).
    scale:
        DCPE scaling factor; paper default 1024.
    hnsw_params:
        Graph construction parameters.
    rng:
        Randomness for key generation, encryption and graph levels.
    """

    def __init__(
        self,
        dim: int,
        beta: float,
        scale: float = DEFAULT_SCALE,
        hnsw_params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dce = DCEScheme(dim, rng=self._rng)
        self._dcpe = DCPEScheme(dim, dcpe_keygen(beta, scale, self._rng), rng=self._rng)
        self._hnsw_params = hnsw_params if hnsw_params is not None else HNSWParams()

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    @property
    def dce_scheme(self) -> DCEScheme:
        """The owner's DCE scheme instance (secret)."""
        return self._dce

    @property
    def dcpe_scheme(self) -> DCPEScheme:
        """The owner's DCPE scheme instance (secret)."""
        return self._dcpe

    def authorize_user(self) -> SecretKeyBundle:
        """Produce the key bundle a query user needs (Figure 1, step 0)."""
        return SecretKeyBundle(
            dim=self._dim,
            dce_key=self._dce.key,
            dcpe_key=self._dcpe.key,
        )

    def build_index(self, vectors: np.ndarray) -> EncryptedIndex:
        """Encrypt the database and build the privacy-preserving index.

        This is steps B1 + B2 of Figure 3: DCE ciphertexts, DCPE
        ciphertexts, and an HNSW graph over the *DCPE* ciphertexts.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise ParameterError(
                f"expected a (n, {self._dim}) database, got shape {vectors.shape}"
            )
        sap = self._dcpe.encrypt_database(vectors)
        dce_db = self._dce.encrypt_database(vectors)
        graph = HNSWIndex(self._dim, self._hnsw_params, rng=self._rng).build(sap)
        return EncryptedIndex(sap, graph, dce_db)

    def encrypt_vector(self, vector: np.ndarray) -> tuple[np.ndarray, "np.ndarray"]:
        """Encrypt one new vector for insertion: ``(C_SAP(u), C_DCE(u))``.

        Returns the SAP row and the DCE ciphertext (see
        :func:`repro.core.maintenance.insert_vector`).
        """
        sap_row = self._dcpe.encrypt(vector)
        dce_ct = self._dce.encrypt(vector)
        return sap_row, dce_ct


class QueryUser:
    """An authorized query user.

    Per query the user performs exactly two encryptions and nothing else;
    the paper's user-side complexity is O(d^2), dominated by the trapdoor's
    matrix-vector products.
    """

    def __init__(
        self,
        keys: SecretKeyBundle,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()
        self._dim = keys.dim
        self._dce = DCEScheme(keys.dim, rng=self._rng, key=keys.dce_key)
        self._dcpe = DCPEScheme(keys.dim, keys.dcpe_key, rng=self._rng)

    @property
    def dim(self) -> int:
        """Plaintext dimensionality."""
        return self._dim

    def encrypt_query(self, query: np.ndarray, k: int) -> EncryptedQuery:
        """Produce the query message ``(C_SAP(q), T_q, k)``."""
        sap = self._dcpe.encrypt(query)
        trapdoor = self._dce.trapdoor(query)
        return EncryptedQuery(sap_vector=sap, trapdoor=trapdoor, k=k)


class CloudServer:
    """The honest-but-curious server: stores the index, answers queries.

    Parameters
    ----------
    index:
        The encrypted index received from the data owner.
    default_ratio_k:
        ``k' = ratio_k * k`` used when a query doesn't specify ``k'``.
    """

    def __init__(self, index: EncryptedIndex, default_ratio_k: int = 8) -> None:
        if default_ratio_k < 1:
            raise ParameterError(f"ratio_k must be >= 1, got {default_ratio_k}")
        self._index = index
        self._default_ratio_k = default_ratio_k

    @property
    def index(self) -> EncryptedIndex:
        """The server's stored index."""
        return self._index

    @property
    def default_ratio_k(self) -> int:
        """Default ``k'/k`` multiplier."""
        return self._default_ratio_k

    def answer(
        self,
        query: EncryptedQuery,
        ratio_k: int | None = None,
        ef_search: int | None = None,
    ) -> SearchReport:
        """Run Algorithm 2 for one encrypted query."""
        ratio = ratio_k if ratio_k is not None else self._default_ratio_k
        if ratio < 1:
            raise ParameterError(f"ratio_k must be >= 1, got {ratio}")
        return filter_and_refine(
            self._index, query, k_prime=ratio * query.k, ef_search=ef_search
        )

    def answer_filter_only(
        self,
        query: EncryptedQuery,
        ef_search: int | None = None,
        k_prime: int | None = None,
    ) -> SearchReport:
        """Filter phase only (the paper's HNSW(filter) reference method)."""
        return filter_only(self._index, query, ef_search=ef_search, k_prime=k_prime)

    def answer_batch(
        self,
        queries: list[EncryptedQuery],
        ratio_k: int | None = None,
        ef_search: int | None = None,
    ) -> list[SearchReport]:
        """Answer a batch of encrypted queries sequentially.

        The paper's evaluation is single-threaded, so "batch" here means a
        convenience loop with shared parameter resolution; QPS numbers from
        it match the per-query path exactly.
        """
        return [self.answer(query, ratio_k=ratio_k, ef_search=ef_search)
                for query in queries]
