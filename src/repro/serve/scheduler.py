"""Micro-batch formation: the size-cap / latency-window race.

The cost model that makes batching worth it is amortization: parameter
resolution, the trapdoor key check, and the liveness mask are built once
per :class:`~repro.core.protocol.EncryptedQueryBatch`, and the batch's
queries then fan out over the shared worker pool.  Offline callers hand
the server pre-assembled batches; an *online* server has to assemble
them itself from requests that arrive one at a time.

:class:`BatchScheduler` owns that assembly.  A single scheduler thread
pulls pending queries off the frontend's admission queue and forms
**micro-batches** under two limits, dispatching on whichever fires
first:

* the **size cap** (``max_batch_size``) — a full batch goes out
  immediately;
* the **latency window** (``batch_window_seconds``) — counted from the
  moment the batch's *first* query is taken up, so no query waits
  longer than one window for company.  A window of 0 degenerates to
  one-query batches (the no-batching baseline).

A formed micro-batch is grouped by ``(request, key_id)`` — only queries
sharing their plaintext parameters and DCE key can share a batch
message — and each group is stacked into an ``EncryptedQueryBatch`` and
dispatched through
:func:`repro.core.search.execute_batch_settled`, which fans the queries
out over the process-wide executor.  The scheduler thread is *not* a
pool worker, so the fan-out parallelizes, and each query's shard
scatter-gather then runs inline inside its pool worker exactly as in
the offline batch path (see :mod:`repro.core.executor` on nesting).

Error delivery is strictly per-query: each pending query settles into
its own future, a poisoned query neither kills nor reorders nor stalls
its batch siblings, and batch-level validation failures (key mismatch,
missing trapdoors) fail exactly the group they poison while the queue
keeps draining.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ParameterError, PPANNSError
from repro.core.protocol import EncryptedQueryBatch

__all__ = ["DeadlineExceededError", "PendingQuery", "BatchScheduler"]


class DeadlineExceededError(PPANNSError):
    """The query's deadline budget expired before execution.

    Raised (into the query's future, or synchronously at admission)
    when a per-query ``deadline_ms`` budget runs out *before* any
    filter/refine work starts — the load-shedding contract: an expired
    query never occupies the pipeline, and the caller always receives
    this type rather than a stale answer or a hang.  Maps to the
    ``DEADLINE`` wire code on protocol-v2 connections.
    """

#: Sentinel enqueued by ``stop()`` to wake the scheduler thread.
_STOP = object()


def _resolve_hook(hook):
    """Dereference a hook that may be a ``weakref.WeakMethod``.

    The frontend passes its bound methods weakly so this thread does
    not keep an abandoned frontend alive; a plain callable (tests often
    inject one) passes through unchanged.  Returns ``None`` when the
    weakly held owner has been collected.
    """
    if isinstance(hook, weakref.WeakMethod):
        return hook()
    return hook


@dataclass
class PendingQuery:
    """One admitted query waiting for (or inside) a micro-batch.

    Attributes
    ----------
    query:
        The encrypted query message.
    future:
        Where the answer (or the query's own failure) is delivered.
    enqueued_at:
        ``time.perf_counter()`` at admission — the start of the
        end-to-end latency the metrics report.
    digest:
        The query's cache digest, or ``None`` when caching is off.
    cache_generation:
        The cache generation observed at admission; a completion whose
        generation went stale (the cache was cleared mid-flight) must
        not repopulate the cache.
    deadline_at:
        Absolute ``time.perf_counter()`` deadline, or ``None`` for no
        budget.  The scheduler sheds queries past it *before* any
        filter/refine work (see :class:`DeadlineExceededError`).
    """

    query: object
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)
    digest: bytes | None = None
    cache_generation: int = 0
    deadline_at: float | None = None


class BatchScheduler:
    """The scheduler thread: admission queue in, answered futures out.

    Parameters
    ----------
    source:
        The bounded admission queue the frontend pushes
        :class:`PendingQuery` items into.
    execute:
        ``execute(batch) -> (settled, wall_seconds, request)`` — the
        dispatch hook, normally a frontend closure over
        :func:`repro.core.search.execute_batch_settled` with the
        server's defaults applied (only the settled list is consumed
        here).
    max_batch_size:
        Micro-batch size cap (>= 1).
    batch_window_seconds:
        Latency window counted from the batch's first query (>= 0).
    metrics:
        The frontend's :class:`~repro.serve.metrics.ServerMetrics`
        (batch sizes, completions, failures land here), or ``None``.
    on_result:
        Optional ``on_result(pending, result)`` hook invoked for every
        *successful* answer before its future resolves — the frontend
        uses it to populate the result cache.
    """

    def __init__(
        self,
        source: "queue.Queue",
        execute,
        max_batch_size: int = 32,
        batch_window_seconds: float = 0.002,
        metrics=None,
        on_result=None,
    ) -> None:
        if max_batch_size < 1:
            raise ParameterError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if batch_window_seconds < 0:
            raise ParameterError(
                f"batch_window_seconds must be >= 0, got {batch_window_seconds}"
            )
        self._source = source
        self._execute = execute
        self._max_batch_size = max_batch_size
        self._window = batch_window_seconds
        self._metrics = metrics
        self._on_result = on_result
        self._stop_requested = threading.Event()
        # offer() and the thread's exit path synchronize on this lock:
        # an accepted offer happens-before the exit flag, so its item is
        # always covered by the final drain — a submit can race stop()
        # but can never strand a future.
        self._exit_lock = threading.Lock()
        self._exited = False
        self._thread = threading.Thread(
            target=self._run,
            name="repro-serve-scheduler",
            daemon=True,
        )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "BatchScheduler":
        """Start the scheduler thread (idempotent per instance)."""
        if not self._thread.is_alive() and not self._stop_requested.is_set():
            self._thread.start()
        return self

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain the queue, dispatch the tail, and stop the thread.

        Every query admitted before ``stop`` is still answered — the
        sentinel rides the FIFO behind them, so the thread forms final
        micro-batches (without window waits) for everything in front of
        it and exits only when the queue is empty.
        """
        if self._stop_requested.is_set():
            return
        self._stop_requested.set()
        if self._thread.is_alive():
            self._source.put(_STOP)
            self._thread.join(timeout=timeout)

    @property
    def running(self) -> bool:
        """Whether the scheduler thread is alive."""
        return self._thread.is_alive()

    def offer(self, pending: PendingQuery) -> bool:
        """Enqueue one pending query — atomically against thread exit.

        Returns ``False`` once the scheduler has passed its
        exit-and-drain point (the caller must hand the item to a fresh
        scheduler); lets ``queue.Full`` propagate so the frontend can
        surface backpressure.  An offer that returns ``True`` is
        guaranteed to be answered: the exit path only sets the flag
        under the same lock and drains the queue afterwards, so the
        accepted item is either consumed by the running loop or swept
        by that final drain.
        """
        with self._exit_lock:
            if self._exited:
                return False
            self._source.put_nowait(pending)
            return True

    # -- the scheduler loop ------------------------------------------------------

    def _run(self) -> None:
        try:
            self._loop()
        finally:
            with self._exit_lock:
                self._exited = True
            # No offer can be accepted past this point, and every one
            # accepted before it is visible in the queue: the final
            # drain answers the tail, stranding nothing.
            self._drain_remaining()

    def _loop(self) -> None:
        while True:
            try:
                first = self._source.get(timeout=0.1)
            except queue.Empty:
                if self._stop_requested.is_set() or self._hooks_dead():
                    return
                continue
            if first is _STOP:
                return
            batch, saw_stop = self._form_batch(first)
            self._dispatch(batch)
            if saw_stop:
                return

    def _hooks_dead(self) -> bool:
        """Whether the owning frontend was garbage collected.

        The frontend hands its hooks over as ``weakref.WeakMethod``
        wrappers, so an abandoned (never-stopped) frontend does not
        stay alive through this thread; once the owner is gone the loop
        exits instead of polling forever.
        """
        return _resolve_hook(self._execute) is None

    def _form_batch(self, first: PendingQuery) -> "tuple[list[PendingQuery], bool]":
        """Collect a micro-batch: size cap vs latency window, first wins."""
        batch = [first]
        deadline = time.perf_counter() + self._window
        while len(batch) < self._max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._source.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _STOP:
                return batch, True
            batch.append(item)
        return batch, self._stop_requested.is_set()

    def _drain_remaining(self) -> None:
        """Dispatch everything still queued, in full-size batches."""
        while True:
            batch: list[PendingQuery] = []
            while len(batch) < self._max_batch_size:
                try:
                    item = self._source.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    continue
                batch.append(item)
            if not batch:
                return
            self._dispatch(batch)

    def _dispatch(self, batch: "list[PendingQuery]") -> None:
        """Group, stack, execute, and deliver one formed micro-batch."""
        # Claim every future before doing work: a future cancelled while
        # queued is dropped here (its work is genuinely saved), and a
        # claimed future can no longer be cancelled — so the delivery
        # below can never hit InvalidStateError and kill the thread.
        batch = [
            pending
            for pending in batch
            if pending.future.set_running_or_notify_cancel()
        ]
        if not batch:
            return
        # Shed expired queries before any filter/refine work: a query
        # whose deadline passed while it waited gets a typed failure
        # now instead of burning pipeline time on an answer nobody is
        # still waiting for.
        now = time.perf_counter()
        expired = [
            p for p in batch if p.deadline_at is not None and now >= p.deadline_at
        ]
        if expired:
            dropped = {id(p) for p in expired}
            batch = [p for p in batch if id(p) not in dropped]
            for pending in expired:
                if self._metrics is not None:
                    self._metrics.record_deadline_shed()
                    self._metrics.record_failed(now - pending.enqueued_at)
                pending.future.set_exception(
                    DeadlineExceededError(
                        "deadline expired after "
                        f"{now - pending.enqueued_at:.3f}s in the serving "
                        "queue; the query was shed before execution"
                    )
                )
        if not batch:
            return
        execute = _resolve_hook(self._execute)
        if execute is None:
            # The owning frontend was collected mid-flight; answers are
            # impossible, but futures must still settle.
            self._deliver_group_failure(
                batch,
                RuntimeError(
                    "serving frontend was garbage collected with queries "
                    "in flight"
                ),
            )
            return
        if self._metrics is not None:
            self._metrics.record_batch(len(batch))
            self._metrics.record_queue_depth(self._source.qsize())
        for group in self._group_compatible(batch):
            try:
                stacked = EncryptedQueryBatch(
                    np.stack([p.query.sap_vector for p in group]),
                    np.stack([p.query.trapdoor.vector for p in group]),
                    group[0].query.trapdoor.key_id,
                    group[0].query.request,
                )
                settled = execute(stacked)[0]
            except Exception as exc:
                # Batch-level validation failed: the whole group shares
                # the poison (same request, same key), so every member
                # receives it — and the loop continues to the next
                # group / batch; the queue keeps draining.
                self._deliver_group_failure(group, exc)
                continue
            self._deliver(group, settled)

    @staticmethod
    def _group_compatible(
        batch: "list[PendingQuery]",
    ) -> "list[list[PendingQuery]]":
        """Split a micro-batch into stackable ``(request, key_id)`` groups.

        An ``EncryptedQueryBatch`` shares one request and one DCE key
        across its rows; an online mix of parameters therefore splits —
        in arrival order — into one batch message per distinct pair
        (uniform traffic stays a single group).
        """
        groups: "dict[tuple, list[PendingQuery]]" = {}
        for pending in batch:
            key = (pending.query.request, pending.query.trapdoor.key_id)
            groups.setdefault(key, []).append(pending)
        return list(groups.values())

    def _deliver(self, group, settled) -> None:
        """Route each settled outcome to its own future."""
        on_result = _resolve_hook(self._on_result)
        for pending, outcome in zip(group, settled):
            latency = time.perf_counter() - pending.enqueued_at
            if outcome.ok:
                if self._metrics is not None:
                    self._metrics.record_completed(latency, outcome.value)
                if on_result is not None:
                    on_result(pending, outcome.value)
                pending.future.set_result(outcome.value)
            else:
                if self._metrics is not None:
                    self._metrics.record_failed(latency)
                pending.future.set_exception(outcome.error)

    def _deliver_group_failure(self, group, exc: Exception) -> None:
        """Fail every member of a group whose batch-level setup raised."""
        for pending in group:
            if self._metrics is not None:
                self._metrics.record_failed(
                    time.perf_counter() - pending.enqueued_at
                )
            pending.future.set_exception(exc)
