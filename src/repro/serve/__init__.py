"""Online micro-batching serving layer over the staged query pipeline.

The offline engine (PRs 1-4) made every stage fast for callers who hand
the server a pre-assembled batch.  This package serves the ROADMAP's
online workload — requests arriving one at a time from many users — by
letting the **server itself** form the batches that amortize per-batch
setup:

* :class:`~repro.serve.frontend.ServingFrontend` — the entry point:
  bounded admission queue, per-query futures, explicit backpressure via
  :class:`~repro.serve.frontend.QueueFullError`, optional LRU result
  cache.
* :class:`~repro.serve.scheduler.BatchScheduler` — the scheduler
  thread: forms micro-batches by size cap *or* latency window
  (whichever fires first) and dispatches them through
  :func:`repro.core.search.execute_batch_settled` onto the shared
  executor.
* :class:`~repro.serve.cache.ResultCache` — LRU of answered results
  keyed by ciphertext digest (:func:`~repro.serve.cache.query_digest`).
* :class:`~repro.serve.metrics.ServerMetrics` — qps, p50/p95/p99
  latency, queue depth, batch-size histogram, per-stage seconds;
  snapshots feed the CLI's ``serve`` / ``workload`` ``--json`` output.

Construction normally goes through
:meth:`repro.core.roles.CloudServer.serving_frontend` or
:meth:`repro.core.scheme.PPANNS.serve`::

    with scheme.serve(max_batch_size=16, batch_window_seconds=0.002) as f:
        future = f.submit(encrypted_query)     # returns immediately
        result = future.result()
        print(f.metrics.snapshot().qps)

``benchmarks/bench_serving.py`` drives an open-loop Poisson workload
through this stack and asserts the micro-batched throughput bar.
"""

from repro.serve.cache import ResultCache, query_digest
from repro.serve.frontend import (
    DeadlineExceededError,
    QueueFullError,
    ServingFrontend,
    replay_open_loop,
)
from repro.serve.metrics import MetricsSnapshot, ServerMetrics
from repro.serve.scheduler import BatchScheduler, PendingQuery

__all__ = [
    "ServingFrontend",
    "QueueFullError",
    "DeadlineExceededError",
    "BatchScheduler",
    "PendingQuery",
    "ResultCache",
    "query_digest",
    "ServerMetrics",
    "MetricsSnapshot",
    "replay_open_loop",
]
