"""Server-side serving metrics: throughput, latency tails, batch shapes.

The offline benchmarks measure one batch at a time; an online server
needs *continuous* aggregates over whatever traffic arrives.
:class:`ServerMetrics` is the thread-safe accumulator every
:class:`~repro.serve.frontend.ServingFrontend` carries:

* **throughput** — completed queries per second since the window began;
* **latency tails** — p50/p95/p99 (and mean/max) of the *end-to-end*
  per-query latency, admission to completion, over a bounded reservoir
  of the most recent queries (old traffic ages out, the reservoir bound
  keeps memory flat under unbounded uptime);
* **queue depth** — the admission-queue depth sampled at every submit,
  plus the maximum ever observed (how close the server ran to
  backpressure);
* **batch-size histogram** — how large the scheduler's micro-batches
  actually were, the direct signature of the size-cap-vs-latency-window
  race;
* **per-stage seconds** — the pipeline's ``filter`` / ``mask`` /
  ``refine`` stage totals, summed over every completed query (the
  online continuation of the per-result stage split).

:meth:`ServerMetrics.snapshot` freezes everything into an immutable
:class:`MetricsSnapshot` whose :meth:`~MetricsSnapshot.as_dict` is the
JSON payload the CLI's ``serve`` / ``workload`` commands emit; the
field set is documented in ``docs/FORMATS.md``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["MetricsSnapshot", "ServerMetrics", "percentile"]

#: How many recent per-query latencies the percentile reservoir keeps.
DEFAULT_LATENCY_WINDOW = 8192


def percentile(sorted_values: "list[float]", q: float) -> float:
    """The q-th percentile (0..100) of an ascending-sorted sample.

    Nearest-rank definition: the smallest value with at least ``q``
    percent of the sample at or below it — no interpolation, so the
    answer is always an observed latency.  Returns 0.0 for an empty
    sample.
    """
    if not sorted_values:
        return 0.0
    if q <= 0:
        return sorted_values[0]
    rank = -(-q * len(sorted_values) // 100)  # ceil without float drift
    return sorted_values[min(len(sorted_values), int(rank)) - 1]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable point-in-time view of a :class:`ServerMetrics`.

    Attributes
    ----------
    elapsed_seconds:
        Wall clock since the metrics window began (construction or the
        last :meth:`ServerMetrics.reset`).
    submitted / completed / failed / rejected:
        Query counters: admitted to the queue, answered successfully,
        settled with an exception, refused with
        :class:`~repro.serve.frontend.QueueFullError`.
    cache_hits:
        Queries answered from the result cache without being enqueued.
    cache_misses:
        Cache lookups that found nothing (the query went on to the
        admission queue).  Only counted while a cache is enabled.
    cache_inserts:
        Answers actually stored in the cache (drops from capacity-0 or
        stale-generation puts are excluded).
    qps:
        ``completed / elapsed_seconds`` (0.0 before any completion).
    latency_p50 / latency_p95 / latency_p99:
        Nearest-rank percentiles of the end-to-end per-query latency
        (admission to completion) over the bounded reservoir.
    latency_mean / latency_max:
        Mean and maximum over the same reservoir.
    queue_depth:
        Admission-queue depth at snapshot time.
    max_queue_depth:
        Largest depth sampled at any admission.
    batches:
        Micro-batches dispatched by the scheduler.
    batch_size_histogram:
        ``{batch size: count}`` over every dispatched micro-batch.
    mean_batch_size:
        Mean micro-batch size (0.0 before any dispatch).
    stage_seconds:
        Total pipeline-stage wall clock summed over completed queries,
        keyed by stage name (``filter`` / ``mask`` / ``refine``).
    deadline_sheds:
        Queries shed with
        :class:`~repro.serve.frontend.DeadlineExceededError` — refused
        at admission because the estimated queue wait already exceeded
        their budget, or dropped by the scheduler after expiring in the
        queue.
    rate_limited:
        Queries refused by a per-tenant token-bucket rate quota.
    connection_refusals:
        TCP connections refused by the server-wide connection limit.
    retries:
        Client-visible retries: re-sends performed by a resilient
        :class:`~repro.net.client.NetClient` whose ``on_retry`` hook is
        wired to these metrics (pure server-side deployments leave
        it 0).
    """

    elapsed_seconds: float
    submitted: int
    completed: int
    failed: int
    rejected: int
    cache_hits: int
    cache_misses: int
    cache_inserts: int
    qps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    latency_mean: float
    latency_max: float
    queue_depth: int
    max_queue_depth: int
    batches: int
    batch_size_histogram: "dict[int, int]"
    mean_batch_size: float
    stage_seconds: "dict[str, float]"
    deadline_sheds: int = 0
    rate_limited: int = 0
    connection_refusals: int = 0
    retries: int = 0

    def as_dict(self) -> dict:
        """JSON-ready form (the CLI ``serve`` / ``workload`` payload)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_inserts": self.cache_inserts,
            "qps": self.qps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "latency_mean": self.latency_mean,
            "latency_max": self.latency_max,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
            "batches": self.batches,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_size_histogram.items())
            },
            "mean_batch_size": self.mean_batch_size,
            "stage_seconds": dict(self.stage_seconds),
            "deadline_sheds": self.deadline_sheds,
            "rate_limited": self.rate_limited,
            "connection_refusals": self.connection_refusals,
            "retries": self.retries,
        }


class ServerMetrics:
    """Thread-safe serving-metrics accumulator (one per frontend).

    Producers call the ``record_*`` methods from the admission path and
    the scheduler thread; consumers call :meth:`snapshot` whenever they
    want a consistent view.  All methods take one short lock — nothing
    here sits on the numeric hot path.
    """

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW) -> None:
        if latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {latency_window}")
        self._lock = threading.Lock()
        self._latency_window = latency_window
        self.reset()

    def reset(self) -> None:
        """Zero every counter and restart the metrics window."""
        with self._lock:
            self._started_at = time.perf_counter()
            self._submitted = 0
            self._completed = 0
            self._failed = 0
            self._rejected = 0
            self._cache_hits = 0
            self._cache_misses = 0
            self._cache_inserts = 0
            self._latencies: deque[float] = deque(maxlen=self._latency_window)
            self._queue_depth = 0
            self._max_queue_depth = 0
            self._batch_sizes: dict[int, int] = {}
            self._batches = 0
            self._stage_seconds: dict[str, float] = {}
            self._deadline_sheds = 0
            self._rate_limited = 0
            self._connection_refusals = 0
            self._retries = 0

    # -- producers ---------------------------------------------------------------

    def record_admitted(self, queue_depth: int) -> None:
        """One query entered the admission queue at the given depth."""
        with self._lock:
            self._submitted += 1
            self._queue_depth = queue_depth
            if queue_depth > self._max_queue_depth:
                self._max_queue_depth = queue_depth

    def record_rejected(self) -> None:
        """One query was refused at admission (queue full)."""
        with self._lock:
            self._rejected += 1

    def record_cache_hit(self) -> None:
        """One query was answered from the result cache."""
        with self._lock:
            self._cache_hits += 1

    def record_cache_miss(self) -> None:
        """One enabled-cache lookup found nothing."""
        with self._lock:
            self._cache_misses += 1

    def record_cache_insert(self) -> None:
        """One answer was stored in the result cache."""
        with self._lock:
            self._cache_inserts += 1

    def record_batch(self, batch_size: int) -> None:
        """The scheduler dispatched one micro-batch of the given size."""
        with self._lock:
            self._batches += 1
            self._batch_sizes[batch_size] = self._batch_sizes.get(batch_size, 0) + 1

    def record_completed(self, latency_seconds: float, result=None) -> None:
        """One query finished successfully.

        ``latency_seconds`` is end-to-end (admission to completion);
        ``result`` — when given — contributes its per-stage split to the
        aggregate ``stage_seconds``.
        """
        with self._lock:
            self._completed += 1
            self._latencies.append(latency_seconds)
            if result is not None:
                for stage, seconds in (
                    ("filter", result.filter_seconds),
                    ("mask", result.mask_seconds),
                    ("refine", result.refine_seconds),
                ):
                    self._stage_seconds[stage] = (
                        self._stage_seconds.get(stage, 0.0) + seconds
                    )

    def record_failed(self, latency_seconds: float) -> None:
        """One query settled with an exception."""
        with self._lock:
            self._failed += 1
            self._latencies.append(latency_seconds)

    def record_queue_depth(self, queue_depth: int) -> None:
        """Refresh the queue-depth gauge (e.g. after the scheduler drains)."""
        with self._lock:
            self._queue_depth = queue_depth

    def record_deadline_shed(self) -> None:
        """One query was shed because its deadline budget expired."""
        with self._lock:
            self._deadline_sheds += 1

    def record_rate_limited(self) -> None:
        """One query was refused by a per-tenant rate quota."""
        with self._lock:
            self._rate_limited += 1

    def record_connection_refused(self) -> None:
        """One connection was refused by the server-wide limit."""
        with self._lock:
            self._connection_refusals += 1

    def record_retry(self) -> None:
        """One client-visible retry (a resilient client re-sent a query)."""
        with self._lock:
            self._retries += 1

    def estimated_wait_seconds(self) -> float:
        """A Little's-law estimate of the current queue wait.

        ``queue depth / observed service rate`` — the time a query
        admitted *now* should expect to sit before the scheduler
        reaches it.  Returns 0.0 before any completion (no rate
        observed yet): an idle or cold server never refuses on a
        guess.  The admission path compares this against a query's
        deadline budget to shed work that cannot possibly make it.
        """
        with self._lock:
            if self._completed == 0 or self._queue_depth == 0:
                return 0.0
            elapsed = time.perf_counter() - self._started_at
            if elapsed <= 0:
                return 0.0
            rate = self._completed / elapsed
            if rate <= 0:
                return 0.0
            return self._queue_depth / rate

    # -- consumers ---------------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """A consistent, immutable view of every aggregate."""
        with self._lock:
            elapsed = time.perf_counter() - self._started_at
            ordered = sorted(self._latencies)
            total_batch_queries = sum(
                size * count for size, count in self._batch_sizes.items()
            )
            return MetricsSnapshot(
                elapsed_seconds=elapsed,
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                cache_hits=self._cache_hits,
                cache_misses=self._cache_misses,
                cache_inserts=self._cache_inserts,
                qps=self._completed / elapsed if elapsed > 0 else 0.0,
                latency_p50=percentile(ordered, 50),
                latency_p95=percentile(ordered, 95),
                latency_p99=percentile(ordered, 99),
                latency_mean=(
                    sum(ordered) / len(ordered) if ordered else 0.0
                ),
                latency_max=ordered[-1] if ordered else 0.0,
                queue_depth=self._queue_depth,
                max_queue_depth=self._max_queue_depth,
                batches=self._batches,
                batch_size_histogram=dict(self._batch_sizes),
                mean_batch_size=(
                    total_batch_queries / self._batches if self._batches else 0.0
                ),
                stage_seconds=dict(self._stage_seconds),
                deadline_sheds=self._deadline_sheds,
                rate_limited=self._rate_limited,
                connection_refusals=self._connection_refusals,
                retries=self._retries,
            )
