"""LRU result cache keyed by ciphertext digest.

The cache key is a digest of exactly the bytes the query message
already shipped (``C_SAP(q)``, the trapdoor ``T_q``, the key tag, and
the search parameters), so the server recognizes a repeat without
learning anything it didn't already see.  Two queries collide only if
their ciphertexts are **bit-identical**, in which case Algorithm 2 is
fully deterministic and the cached answer is the answer.

What produces bit-identical ciphertexts: replays of the *same
encrypted message* — client retries after a timeout, gateway
redelivery, fan-in layers that duplicate a request, or callers that
encrypt once and resubmit the :class:`EncryptedQuery` object.  What
does **not**: re-encrypting the same plaintext — DCPE encryption draws
a fresh perturbation per call (and TrapGen fresh randomizers), so two
independent encryptions of one plaintext never collide.  The cache is
a replay/retry dedup layer, not a plaintext-popularity cache; size it
for the former.

:class:`ResultCache` is a plain thread-safe LRU over an
``OrderedDict``; capacity 0 disables it (every lookup misses, nothing
is stored).  Maintenance invalidates answers — an insert can change
any top-k, a delete tombstones ids a cached result may still carry —
so the owning :class:`~repro.serve.frontend.ServingFrontend` exposes
``cache_clear()`` and deployments must flush on index mutation
(:class:`~repro.core.scheme.PPANNS` ``insert`` / ``delete`` flush
every frontend created through :meth:`~repro.core.scheme.PPANNS.serve`
automatically).  :meth:`clear` also bumps an internal **generation**:
a ``put`` tagged with a pre-clear generation is dropped, so an
in-flight answer computed against the pre-mutation index cannot
repopulate the cache after the flush.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.protocol import EncryptedQuery, SearchResult

__all__ = ["ResultCache", "query_digest"]


def query_digest(query: EncryptedQuery) -> bytes:
    """The cache key: a BLAKE2b digest of the query message's bytes.

    Covers the DCPE ciphertext, the DCE trapdoor vector, the key tag,
    and every plaintext search parameter the request carries — anything
    that can change the answer changes the digest.  The digest is
    computed over ciphertexts the server already holds, so caching adds
    no leakage beyond the (standard for deterministic trapdoors) fact
    that two identical queries are recognizably identical.
    """
    request = query.request
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(np.ascontiguousarray(query.sap_vector, dtype=np.float64).tobytes())
    hasher.update(
        np.ascontiguousarray(query.trapdoor.vector, dtype=np.float64).tobytes()
    )
    hasher.update(
        repr(
            (
                query.trapdoor.key_id,
                request.k,
                request.ratio_k,
                request.ef_search,
                request.mode,
            )
        ).encode()
    )
    return hasher.digest()


class ResultCache:
    """A bounded, thread-safe LRU of ``digest -> SearchResult``.

    ``capacity`` bounds the entry count; inserting beyond it evicts the
    least-recently-used entry.  A capacity of 0 disables the cache
    entirely — lookups miss, stores are dropped — so callers never need
    a conditional around it.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[bytes, SearchResult]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._inserts = 0
        self._generation = 0

    @property
    def capacity(self) -> int:
        """Maximum number of cached results (0 = disabled)."""
        return self._capacity

    @property
    def hits(self) -> int:
        """Lookups answered from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that found nothing."""
        return self._misses

    @property
    def inserts(self) -> int:
        """Results actually stored (capacity-0 and stale puts excluded)."""
        return self._inserts

    @property
    def generation(self) -> int:
        """Bumped by every :meth:`clear`; tag ``put`` calls with it."""
        return self._generation

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: bytes) -> SearchResult | None:
        """The cached result for ``digest`` (refreshes recency), or None."""
        with self._lock:
            result = self._entries.get(digest)
            if result is None:
                self._misses += 1
                return None
            self._entries.move_to_end(digest)
            self._hits += 1
            return result

    def put(
        self, digest: bytes, result: SearchResult, generation: int | None = None
    ) -> bool:
        """Store ``result`` under ``digest``, evicting LRU beyond capacity.

        ``generation`` — when given — must match the cache's current
        generation or the store is dropped: an answer computed before a
        :meth:`clear` (index mutation) must not repopulate the cache
        after it.  Returns whether the result was actually stored, so
        the serving metrics can count real inserts and not dropped ones.
        """
        if self._capacity == 0:
            return False
        with self._lock:
            if generation is not None and generation != self._generation:
                return False
            self._entries[digest] = result
            self._entries.move_to_end(digest)
            self._inserts += 1
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            return True

    def clear(self) -> int:
        """Drop every entry and bump the generation (stale puts no-op).

        Returns the new generation, so callers coordinating a flush with
        an index swap (the compactor) can assert which epoch they own.
        """
        with self._lock:
            self._entries.clear()
            self._generation += 1
            return self._generation
