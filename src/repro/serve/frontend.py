"""The online serving frontend: admission, backpressure, caching.

This is the piece that turns the batch-first engine into an *online*
server.  Requests arrive one at a time (``submit`` returns a future
immediately); the frontend admits them into a **bounded queue** — the
explicit backpressure point — and a :class:`~repro.serve.scheduler
.BatchScheduler` thread forms the micro-batches that amortize per-batch
setup, exactly as an offline caller's hand-assembled
``EncryptedQueryBatch`` would.

```
 submit ──▶ admit (bounded queue, QueueFullError) ──▶ schedule (size cap
        ◀── future                                     | latency window)
                                                            │
 respond ◀── per-query futures ◀── staged pipeline ◀── micro-batch
```

Design points:

* **Backpressure is explicit.**  A full admission queue raises
  :class:`QueueFullError` at ``submit`` — load is shed at the front
  door where the caller can react (retry, divert, degrade), never by
  silent unbounded buffering.
* **Per-query futures.**  Every admitted query gets its own
  :class:`concurrent.futures.Future`; a failing query delivers its
  exception to its own future while batch siblings complete normally
  (see :func:`repro.core.search.execute_batch_settled`).
* **Result cache.**  An optional LRU keyed by ciphertext digest
  (:mod:`repro.serve.cache`) answers bit-identical repeat queries
  without touching the queue; index maintenance must ``cache_clear()``.
* **Metrics.**  A :class:`~repro.serve.metrics.ServerMetrics` aggregates
  qps, latency percentiles, queue depth, the batch-size histogram, and
  per-stage seconds; ``metrics.snapshot()`` is the monitoring payload.

Construction goes through :meth:`repro.core.roles.CloudServer
.serving_frontend` / :meth:`repro.core.scheme.PPANNS.serve`; the CLI's
``serve`` and ``workload`` commands and ``benchmarks/bench_serving.py``
drive it end to end.
"""

from __future__ import annotations

import queue
import threading
import time
import weakref
from concurrent.futures import Future

import numpy as np

from repro.core.errors import ParameterError, PPANNSError
from repro.core.protocol import EncryptedQuery, SearchResult, SearchResultBatch
from repro.core.search import execute_batch_settled
from repro.serve.cache import ResultCache, query_digest
from repro.serve.metrics import ServerMetrics
from repro.serve.scheduler import (
    BatchScheduler,
    DeadlineExceededError,
    PendingQuery,
)

__all__ = [
    "DeadlineExceededError",
    "QueueFullError",
    "ServingFrontend",
    "replay_open_loop",
]


def _weak_hook(fn):
    """A ``WeakMethod`` for bound methods, the callable itself otherwise.

    The scheduler thread must not hold a strong reference back to its
    frontend — an abandoned (never-stopped) frontend would then never
    be collected and its thread would poll forever.  Plain functions
    (tests inject them) have no owner to hold weakly and pass through.
    """
    try:
        return weakref.WeakMethod(fn)
    except TypeError:
        return fn


class QueueFullError(PPANNSError):
    """Admission refused: the serving queue is at capacity.

    The explicit backpressure signal of the online layer — raised by
    :meth:`ServingFrontend.submit` instead of buffering without bound.
    Callers decide the shedding policy (retry with backoff, divert to a
    replica, degrade to filter-only); the server itself never blocks
    the submitting thread.
    """


class ServingFrontend:
    """Online entry point over a :class:`~repro.core.roles.CloudServer`.

    Parameters
    ----------
    server:
        The cloud server whose index and defaults answer the traffic.
    max_batch_size:
        Micro-batch size cap (dispatch fires when a forming batch
        reaches it).
    batch_window_seconds:
        Micro-batch latency window, counted from the batch's first
        query (dispatch fires when it expires; 0 disables batching).
    max_queue_depth:
        Admission-queue bound; a submit beyond it raises
        :class:`QueueFullError`.
    cache_size:
        LRU result-cache capacity in entries (0 disables caching).
    refine_engine:
        Refine-engine override for served traffic (``None`` = the
        server's configured engine).
    filter_engine:
        Filter-engine override for served traffic (``None`` = the
        server's configured engine).
    metrics:
        An external :class:`~repro.serve.metrics.ServerMetrics` to
        aggregate into (``None`` creates a private one).

    The frontend is a context manager: ``with server.serving_frontend()
    as frontend: ...`` starts the scheduler thread and drains it on
    exit.  ``submit`` also lazily starts the scheduler, so short scripts
    can skip the ``with``.
    """

    def __init__(
        self,
        server,
        max_batch_size: int = 32,
        batch_window_seconds: float = 0.002,
        max_queue_depth: int = 1024,
        cache_size: int = 0,
        refine_engine: str | None = None,
        filter_engine: str | None = None,
        metrics: ServerMetrics | None = None,
    ) -> None:
        if max_queue_depth < 1:
            raise ParameterError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self._server = server
        self._max_batch_size = max_batch_size
        self._batch_window_seconds = batch_window_seconds
        self._max_queue_depth = max_queue_depth
        self._refine_engine = refine_engine
        self._filter_engine = filter_engine
        self._metrics = metrics if metrics is not None else ServerMetrics()
        self._cache = ResultCache(cache_size)
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue_depth)
        self._lock = threading.Lock()
        self._scheduler: BatchScheduler | None = None

    # -- accessors ---------------------------------------------------------------

    @property
    def server(self):
        """The wrapped :class:`~repro.core.roles.CloudServer`."""
        return self._server

    @property
    def metrics(self) -> ServerMetrics:
        """The serving-metrics aggregator."""
        return self._metrics

    @property
    def cache(self) -> ResultCache:
        """The LRU result cache (capacity 0 when disabled)."""
        return self._cache

    @property
    def queue_depth(self) -> int:
        """Queries currently waiting for a micro-batch."""
        return self._queue.qsize()

    @property
    def max_batch_size(self) -> int:
        """Micro-batch size cap."""
        return self._max_batch_size

    @property
    def batch_window_seconds(self) -> float:
        """Micro-batch latency window in seconds."""
        return self._batch_window_seconds

    @property
    def running(self) -> bool:
        """Whether the scheduler thread is alive."""
        scheduler = self._scheduler
        return scheduler is not None and scheduler.running

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ServingFrontend":
        """Start the scheduler thread (idempotent; restarts after stop)."""
        with self._lock:
            self._start_locked()
        return self

    def _start_locked(self) -> BatchScheduler:
        """Ensure a live scheduler exists; caller holds ``self._lock``."""
        if self._scheduler is None or not self._scheduler.running:
            # Hooks go over weakly (see _weak_hook): the thread must
            # not keep an abandoned frontend alive.
            self._scheduler = BatchScheduler(
                self._queue,
                _weak_hook(self._execute),
                max_batch_size=self._max_batch_size,
                batch_window_seconds=self._batch_window_seconds,
                metrics=self._metrics,
                on_result=_weak_hook(self._cache_result),
            ).start()
        return self._scheduler

    def stop(self) -> None:
        """Answer everything admitted, then stop the scheduler thread.

        Not a terminal state: the next ``submit`` lazily restarts the
        scheduler (see :meth:`start`), so stop() is a drain point, not
        an admission gate.
        """
        with self._lock:
            scheduler = self._scheduler
        if scheduler is not None:
            scheduler.stop()

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- the serving API ---------------------------------------------------------

    def submit(
        self, query: EncryptedQuery, deadline_ms: int | None = None
    ) -> "Future[SearchResult]":
        """Admit one query; returns its future immediately.

        Raises :class:`QueueFullError` when the admission queue is at
        capacity and :class:`~repro.core.errors.ParameterError` for a
        query whose dimensionality cannot match the index (failing fast
        beats failing a formed batch).  A cache hit resolves the future
        synchronously without entering the queue.

        ``deadline_ms`` is the query's end-to-end latency budget.  Two
        shedding points enforce it: admission refuses synchronously
        (:class:`DeadlineExceededError`) when the metrics' estimated
        queue wait already exceeds the budget — a query that cannot
        possibly make it never occupies a queue slot — and the
        scheduler sheds any query whose deadline passes while it waits,
        *before* filter/refine work starts.  A cache hit always
        succeeds: it costs no pipeline time.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ParameterError(
                f"deadline_ms must be a positive integer, got {deadline_ms}"
            )
        if query.sap_vector.shape[-1] != self._server.index.dim:
            raise ParameterError(
                f"query has dimension {query.sap_vector.shape[-1]}, but the "
                f"index holds {self._server.index.dim}-dimensional ciphertexts"
            )
        digest = None
        if self._cache.capacity:
            digest = query_digest(query)
            cached = self._cache.get(digest)
            if cached is not None:
                self._metrics.record_cache_hit()
                future: "Future[SearchResult]" = Future()
                future.set_result(cached)
                return future
            self._metrics.record_cache_miss()
        deadline_at = None
        if deadline_ms is not None:
            budget = deadline_ms / 1000.0
            estimated_wait = self._metrics.estimated_wait_seconds()
            if estimated_wait > budget:
                self._metrics.record_deadline_shed()
                raise DeadlineExceededError(
                    f"estimated queue wait {estimated_wait:.3f}s exceeds the "
                    f"{budget:.3f}s deadline budget; query refused at admission"
                )
            deadline_at = time.perf_counter() + budget
        pending = PendingQuery(
            query=query,
            digest=digest,
            cache_generation=self._cache.generation,
            deadline_at=deadline_at,
        )
        try:
            with self._lock:
                scheduler = self._start_locked()
                while not scheduler.offer(pending):
                    # That scheduler passed its exit-and-drain point
                    # between our liveness check and the offer (a stop
                    # raced us); hand the item to a fresh one instead
                    # of stranding its future.
                    self._scheduler = None
                    scheduler = self._start_locked()
        except queue.Full:
            self._metrics.record_rejected()
            raise QueueFullError(
                f"serving queue is full ({self._max_queue_depth} pending); "
                "retry later or raise max_queue_depth"
            ) from None
        self._metrics.record_admitted(self._queue.qsize())
        return pending.future

    def answer(
        self,
        query: EncryptedQuery,
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ):
        """Blocking convenience: ``submit`` + wait for the result."""
        return self.submit(query, deadline_ms=deadline_ms).result(timeout=timeout)

    def answer_many(
        self, queries, timeout: float | None = None
    ) -> SearchResultBatch:
        """Submit a workload, wait for all answers, first failure wins.

        Mirrors :func:`~repro.core.executor.map_ordered` semantics at
        the serving layer: every query is answered, results come back
        in submission order, and if any failed the first failure *by
        submission position* is re-raised.
        """
        futures = [self.submit(query) for query in queries]
        results, first_error = [], None
        for future in futures:
            try:
                results.append(future.result(timeout=timeout))
            except Exception as exc:
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return SearchResultBatch(results)

    def cache_clear(self) -> int:
        """Flush the result cache (call after index maintenance).

        Returns the cache's new generation: any in-flight answer that
        was admitted under an older generation can no longer repopulate
        the cache, which is what lets a compactor swap backends while
        queries keep streaming.
        """
        return self._cache.clear()

    # -- scheduler hooks ---------------------------------------------------------

    def _execute(self, batch):
        """Run one stacked group through the settled batch engine.

        When the wrapped server runs ``executor="processes"`` its data
        plane carries the batch (``getattr`` keeps duck-typed test
        servers without the knob working).
        """
        return execute_batch_settled(
            self._server.index,
            batch,
            default_ratio_k=self._server.default_ratio_for(batch.request.mode),
            refine_engine=(
                self._refine_engine
                if self._refine_engine is not None
                else self._server.refine_engine
            ),
            filter_engine=(
                self._filter_engine
                if self._filter_engine is not None
                # getattr: duck-typed test servers may predate the knob.
                else getattr(self._server, "filter_engine", None)
            ),
            data_plane=getattr(self._server, "data_plane", lambda: None)(),
        )

    def _cache_result(self, pending: PendingQuery, result: SearchResult) -> None:
        """Store a successful answer under its admission-time digest.

        The admission-time generation guards the store: if the cache
        was cleared while this query was in flight (index mutation),
        the stale answer is dropped instead of repopulating the cache.
        """
        if pending.digest is not None:
            if self._cache.put(pending.digest, result, pending.cache_generation):
                self._metrics.record_cache_insert()


def replay_open_loop(
    frontend: ServingFrontend,
    encrypted,
    rate: float | None = None,
    seed: int = 0,
    deadline_ms: int | None = None,
) -> "tuple[list[SearchResult], float]":
    """Replay an encrypted workload open-loop; ``(results, elapsed)``.

    The one definition of the open-loop arrival contract, shared by the
    CLI's ``serve`` / ``workload`` commands, the eval runner's
    :func:`~repro.eval.runner.sweep_serving`, and
    ``benchmarks/bench_serving.py`` — submissions never wait on
    answers, so the scheduler (not the client) sets the batching.
    ``rate`` is a Poisson arrival rate in queries/second (inter-arrival
    gaps drawn from a ``seed``-ed exponential); ``None`` submits
    back-to-back, the heavy-traffic limit.  ``elapsed`` runs from the
    first submission to the last completion, which is what served-qps
    figures divide by.  ``deadline_ms`` rides on every submission (all
    replay targets — frontend, tenant channel, net client — accept it);
    ``None`` keeps the call compatible with targets that predate it.
    """
    arrival_rng = np.random.default_rng(seed)
    start = None
    futures = []
    for query in encrypted:
        if rate is not None:
            time.sleep(arrival_rng.exponential(1.0 / rate))
        if start is None:
            # The clock starts at the first submission — the gap drawn
            # before it has nothing in flight and must not count.
            start = time.perf_counter()
        if deadline_ms is None:
            futures.append(frontend.submit(query))
        else:
            futures.append(frontend.submit(query, deadline_ms=deadline_ms))
    if start is None:
        return [], 0.0
    results = [future.result() for future in futures]
    return results, time.perf_counter() - start
