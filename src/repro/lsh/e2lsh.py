"""E2LSH — locality-sensitive hashing for Euclidean distance.

Datar, Immorlica, Indyk, Mirrokni (SoCG 2004): each hash function is
``h(v) = floor((a.v + b) / w)`` with Gaussian ``a`` and uniform ``b``; a
table key concatenates ``k`` such hashes, and ``L`` independent tables
are probed per query.  Optional multi-probe (Lv et al., VLDB 2007,
simplified to +-1 perturbations of each hash coordinate) boosts recall per
table.

This is the candidate-generation substrate of the RS-SANN and PRI-ANN
baselines: a query probes its buckets, the union of bucket members is the
candidate set, and (in the baselines) candidates travel to the user for
refinement — the communication cost the paper's comparisons hinge on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError

__all__ = ["E2LSHParams", "E2LSHIndex"]


@dataclass(frozen=True)
class E2LSHParams:
    """E2LSH configuration.

    Attributes
    ----------
    num_tables:
        ``L`` — independent hash tables.
    hashes_per_table:
        ``k`` — concatenated hashes per table key.
    bucket_width:
        ``w`` — quantization width; should scale with typical distances.
    multiprobe:
        Number of extra +-1 perturbation probes per table (0 disables).
    """

    num_tables: int = 8
    hashes_per_table: int = 8
    bucket_width: float = 4.0
    multiprobe: int = 0

    def __post_init__(self) -> None:
        if self.num_tables < 1:
            raise ParameterError(f"num_tables must be >= 1, got {self.num_tables}")
        if self.hashes_per_table < 1:
            raise ParameterError(
                f"hashes_per_table must be >= 1, got {self.hashes_per_table}"
            )
        if self.bucket_width <= 0:
            raise ParameterError(
                f"bucket_width must be positive, got {self.bucket_width}"
            )
        if self.multiprobe < 0:
            raise ParameterError(f"multiprobe must be >= 0, got {self.multiprobe}")


class E2LSHIndex:
    """An E2LSH index over a fixed set of vectors.

    Parameters
    ----------
    vectors:
        ``(n, d)`` database to index.
    params:
        LSH configuration.
    rng:
        Randomness for the hash functions.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        params: E2LSHParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {vectors.shape}"
            )
        self._vectors = vectors
        self._params = params if params is not None else E2LSHParams()
        rng = rng if rng is not None else np.random.default_rng()
        n, dim = vectors.shape
        p = self._params
        # Projections: (L, k, d); offsets: (L, k).
        self._projections = rng.standard_normal((p.num_tables, p.hashes_per_table, dim))
        self._offsets = rng.uniform(0.0, p.bucket_width, size=(p.num_tables, p.hashes_per_table))
        self._tables: list[dict[tuple[int, ...], list[int]]] = []
        all_keys = self._hash_batch(vectors)  # (L, n, k)
        for table_index in range(p.num_tables):
            table: dict[tuple[int, ...], list[int]] = {}
            for vector_id in range(n):
                key = tuple(all_keys[table_index, vector_id].tolist())
                table.setdefault(key, []).append(vector_id)
            self._tables.append(table)

    @property
    def params(self) -> E2LSHParams:
        """The LSH configuration."""
        return self._params

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._vectors.shape[1])

    def _hash_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Hash keys for each vector under every table: ``(L, n, k)`` ints."""
        p = self._params
        # (L, k, d) @ (d, n) -> (L, k, n) -> transpose to (L, n, k).
        raw = np.einsum("lkd,nd->lnk", self._projections, vectors)
        keys = np.floor((raw + self._offsets[:, None, :]) / p.bucket_width)
        return keys.astype(np.int64)

    def _probe_keys(self, base_key: np.ndarray) -> list[tuple[int, ...]]:
        """The base bucket key plus up to ``multiprobe`` perturbed keys."""
        keys = [tuple(base_key.tolist())]
        probes_left = self._params.multiprobe
        if probes_left <= 0:
            return keys
        # Simple perturbation sequence: single-coordinate +-1 shifts first,
        # then pairs, until the probe budget runs out.
        coords = range(len(base_key))
        for radius in (1, 2):
            for positions in itertools.combinations(coords, radius):
                for signs in itertools.product((-1, 1), repeat=radius):
                    if probes_left <= 0:
                        return keys
                    perturbed = base_key.copy()
                    for position, sign in zip(positions, signs):
                        perturbed[position] += sign
                    keys.append(tuple(perturbed.tolist()))
                    probes_left -= 1
        return keys

    def candidates(self, query: np.ndarray) -> list[int]:
        """Union of bucket members over all tables (and probes), unranked."""
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, query.shape[-1], what="query")
        keys = self._hash_batch(query[np.newaxis])[:, 0, :]  # (L, k)
        seen: set[int] = set()
        ordered: list[int] = []
        for table_index, table in enumerate(self._tables):
            for key in self._probe_keys(keys[table_index]):
                for vector_id in table.get(key, ()):
                    if vector_id not in seen:
                        seen.add(vector_id)
                        ordered.append(vector_id)
        return ordered

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """LSH candidate generation + exact re-ranking (plaintext use)."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        candidate_ids = self.candidates(query)
        if not candidate_ids:
            return np.empty(0, dtype=np.int64), np.empty(0)
        subset = self._vectors[candidate_ids]
        diffs = subset - query
        dists = np.einsum("ij,ij->i", diffs, diffs)
        order = np.argsort(dists, kind="stable")[:k]
        ids = np.asarray(candidate_ids, dtype=np.int64)[order]
        return ids, dists[order]
