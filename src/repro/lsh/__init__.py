"""Locality-sensitive hashing substrate.

RS-SANN and PRI-ANN both index with LSH (the paper, Section VII-B:
"[RS-SANN] uses LSH as the index and has to retrieve many more candidates
to reach the same accuracy as ours").  :mod:`repro.lsh.e2lsh` implements
E2LSH for Euclidean distance with optional multi-probe.
"""

from repro.lsh.e2lsh import E2LSHIndex, E2LSHParams

__all__ = ["E2LSHIndex", "E2LSHParams"]
