"""Command-line interface: ``python -m repro <command>``.

A deployable front-end over the library for the three lifecycle stages:

* ``build``  — data-owner side: read a database (``.fvecs`` or ``.npy``),
  encrypt it, build the privacy-preserving index over the chosen filter
  backend (``--backend hnsw|nsg|ivf|bruteforce``), optionally partition
  it (``--shards N --shard-strategy round_robin|hash``), write the index
  and the key bundle to separate files.  ``--build-workers`` caps the
  parallel shard-build fan-out (bit-identical output at any setting),
  ``--build-mode sequential|bulk`` selects the HNSW construction path,
  and ``--json`` emits the machine-readable build report (the
  encrypt/build cost split plus per-shard timings).
* ``query``  — user+server side: load index + keys, batch-encrypt the
  queries from a file, answer them in one pipelined pass, print neighbor
  ids (or a JSON report with ``--json``).  ``--filter-only`` runs the
  filter phase alone; ``--refine-engine heap|vectorized`` selects the
  refine-stage engine.
* ``demo``   — one-command end-to-end demo on a synthetic dataset with a
  recall report.

The index file contains no key material; the key file must be kept by
the owner/user only (see ``repro.core.persistence``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.backends import available_backends
from repro.core.build import BUILD_MODES
from repro.core.persistence import load_index, load_keys, save_index, save_keys
from repro.core.refine import available_refine_engines
from repro.core.sharding import SHARD_STRATEGIES
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.datasets import compute_ground_truth, make_dataset
from repro.datasets.loaders import read_fvecs
from repro.eval.metrics import recall_at_k
from repro.hnsw.graph import HNSWParams

__all__ = ["main", "build_parser"]


def _load_vectors(path: str) -> np.ndarray:
    """Read a database file by extension (.fvecs or .npy)."""
    if path.endswith(".fvecs"):
        return read_fvecs(path)
    if path.endswith(".npy"):
        return np.load(path)
    raise SystemExit(f"unsupported database format: {path} (use .fvecs or .npy)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving k-ANN search (ICDE 2025 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="encrypt a database and build the index")
    build.add_argument("database", help="input vectors (.fvecs or .npy)")
    build.add_argument("--index", required=True, help="output index file (.npz)")
    build.add_argument("--keys", required=True, help="output secret key file (.npz)")
    build.add_argument("--beta", type=float, required=True, help="DCPE noise budget")
    build.add_argument("--scale", type=float, default=1024.0, help="DCPE scale")
    build.add_argument(
        "--backend",
        choices=available_backends(),
        default="hnsw",
        help="filter-phase backend over the DCPE ciphertexts",
    )
    build.add_argument("--m", type=int, default=16, help="HNSW degree")
    build.add_argument("--ef-construction", type=int, default=200)
    build.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the filter structures into N shards "
        "(>= 2 enables scatter-gather answering)",
    )
    build.add_argument(
        "--shard-strategy",
        choices=SHARD_STRATEGIES,
        default="round_robin",
        help="how vector ids map to shards",
    )
    build.add_argument(
        "--build-workers",
        type=int,
        default=None,
        help="parallel shard-build concurrency cap (default: the full "
        "worker pool; results are bit-identical at any setting)",
    )
    build.add_argument(
        "--build-mode",
        choices=BUILD_MODES,
        default="sequential",
        help="HNSW construction path (bulk is vectorized and "
        "bit-identical to sequential from the same seed)",
    )
    build.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON build report (encrypt/build cost split, "
        "per-shard build timings, storage accounting)",
    )
    build.add_argument("--seed", type=int, default=None)

    query = commands.add_parser("query", help="answer k-ANN queries over an index")
    query.add_argument("--index", required=True, help="index file from 'build'")
    query.add_argument("--keys", required=True, help="key file from 'build'")
    query.add_argument("--queries", required=True, help="query vectors (.fvecs or .npy)")
    query.add_argument("-k", type=int, default=10)
    query.add_argument(
        "--ratio-k",
        type=int,
        default=None,
        help="k'/k multiplier (default: 8 for full search, 1 for --filter-only)",
    )
    query.add_argument("--ef-search", type=int, default=None)
    query.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: the server's vectorized engine)",
    )
    query.add_argument(
        "--filter-only",
        action="store_true",
        help="run the filter phase only (skip DCE refinement)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report (ids, timings, byte accounting)",
    )
    query.add_argument("--seed", type=int, default=None)

    demo = commands.add_parser("demo", help="end-to-end demo on synthetic data")
    demo.add_argument("--profile", default="deep", help="dataset profile")
    demo.add_argument("-n", type=int, default=2000, help="database size")
    demo.add_argument("--queries", type=int, default=10)
    demo.add_argument("--beta", type=float, default=1.0)
    demo.add_argument("-k", type=int, default=10)
    demo.add_argument(
        "--backend",
        choices=available_backends(),
        default="hnsw",
        help="filter-phase backend",
    )
    demo.add_argument("--shards", type=int, default=1, help="filter shard count")
    demo.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: vectorized)",
    )
    demo.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    vectors = _load_vectors(args.database)
    rng = np.random.default_rng(args.seed)
    owner = DataOwner(
        vectors.shape[1],
        beta=args.beta,
        scale=args.scale,
        hnsw_params=HNSWParams(m=args.m, ef_construction=args.ef_construction),
        backend=args.backend,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        build_workers=args.build_workers,
        build_mode=args.build_mode,
        rng=rng,
    )
    start = time.perf_counter()
    index = owner.build_index(vectors)
    elapsed = time.perf_counter() - start
    save_index(args.index, index)
    save_keys(args.keys, owner.authorize_user())
    report = index.size_report()
    build_report = index.build_report
    if args.json:
        payload = build_report.as_dict()
        payload.update(
            {
                "shard_strategy": getattr(index, "strategy", None),
                "storage_floats": report.total_floats,
                "dce_overhead_ratio": report.dce_overhead_ratio,
                "index_path": args.index,
                "keys_path": args.keys,
            }
        )
        print(json.dumps(payload, indent=2))
        return 0
    sharding = (
        f"shards={index.num_shards} ({index.strategy}) "
        if hasattr(index, "num_shards")
        else ""
    )
    print(
        f"built index over n={len(index)} d={index.dim} "
        f"backend={index.backend_kind} {sharding}in {elapsed:.1f}s "
        f"(encrypt {build_report.encrypt_seconds:.1f}s + "
        f"build {build_report.build_seconds:.1f}s, "
        f"mode={build_report.build_mode}); "
        f"storage {report.total_floats} floats "
        f"({report.dce_overhead_ratio:.2f}x plaintext for C_DCE)"
    )
    print(f"index -> {args.index}  (server-side, no keys)")
    print(f"keys  -> {args.keys}  (owner/user only)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.filter_only and args.refine_engine:
        raise SystemExit(
            "--refine-engine has no effect with --filter-only "
            "(the refine phase is skipped entirely)"
        )
    index = load_index(args.index)
    keys = load_keys(args.keys)
    user = QueryUser(keys, rng=np.random.default_rng(args.seed))
    server = CloudServer(index, refine_engine=args.refine_engine)
    queries = _load_vectors(args.queries)

    encrypt_start = time.perf_counter()
    batch = user.encrypt_queries(
        queries,
        args.k,
        ratio_k=args.ratio_k,
        ef_search=args.ef_search,
        mode="filter_only" if args.filter_only else "full",
    )
    encrypt_seconds = time.perf_counter() - encrypt_start
    results = server.answer(batch)

    if args.json:
        payload = {
            "backend": index.backend_kind,
            "shards": getattr(index, "num_shards", 1),
            "k": args.k,
            "mode": batch.request.mode,
            "num_queries": len(batch),
            "ids": [result.ids.tolist() for result in results],
            "encrypt_seconds": encrypt_seconds,
            "server_seconds": results.total_seconds,
            "wall_seconds": results.wall_seconds,
            "filter_seconds": results.filter_seconds,
            "mask_seconds": results.mask_seconds,
            "refine_seconds": results.refine_seconds,
            "qps": results.qps,
            "upload_bytes": batch.upload_bytes(),
            "download_bytes": results.download_bytes(),
            "refine_comparisons": results.refine_comparisons,
        }
        if batch.request.mode == "full":
            payload["refine_engine"] = server.refine_engine
            payload["refine_kernel_seconds"] = results.refine_kernel_seconds
        shard_seconds = results.shard_seconds()
        if shard_seconds:
            payload["shard_seconds"] = {
                str(shard): seconds for shard, seconds in shard_seconds.items()
            }
            payload["gather_bytes"] = results.gather_bytes()
        print(json.dumps(payload, indent=2))
        return 0

    for i, result in enumerate(results):
        print(f"query {i}: {' '.join(str(x) for x in result.ids.tolist())}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(args.profile, num_vectors=args.n,
                           num_queries=args.queries, rng=rng)
    owner = DataOwner(
        dataset.dim, beta=args.beta, backend=args.backend,
        shards=args.shards, rng=rng,
    )
    index = owner.build_index(dataset.database)
    server = CloudServer(index, refine_engine=args.refine_engine)
    user = QueryUser(owner.authorize_user(), rng=rng)
    truth = compute_ground_truth(dataset.database, dataset.queries, args.k)
    batch = user.encrypt_queries(dataset.queries, args.k, ef_search=120)
    results = server.answer(batch)
    recalls = [
        recall_at_k(result.ids, truth.for_query(i), args.k)
        for i, result in enumerate(results)
    ]
    print(
        f"profile={args.profile} n={args.n} d={dataset.dim} beta={args.beta} "
        f"backend={index.backend_kind} refine={server.refine_engine}: "
        f"Recall@{args.k} = {np.mean(recalls):.3f}, "
        f"{results.qps:.0f} QPS (server-side)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {"build": _cmd_build, "query": _cmd_query, "demo": _cmd_demo}
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
