"""Command-line interface: ``python -m repro <command>``.

A deployable front-end over the library for the three lifecycle stages:

* ``build``  — data-owner side: read a database (``.fvecs`` or ``.npy``),
  encrypt it, build the privacy-preserving index over the chosen filter
  backend (``--backend hnsw|nsg|ivf|bruteforce``), optionally partition
  it (``--shards N --shard-strategy round_robin|hash``), write the index
  and the key bundle to separate files.  ``--build-workers`` caps the
  parallel shard-build fan-out (bit-identical output at any setting),
  ``--build-mode sequential|bulk`` selects the HNSW construction path,
  and ``--json`` emits the machine-readable build report (the
  encrypt/build cost split plus per-shard timings).
* ``query``  — user+server side: load index + keys, batch-encrypt the
  queries from a file, answer them in one pipelined pass, print neighbor
  ids (or a JSON report with ``--json``).  ``--filter-only`` runs the
  filter phase alone; ``--refine-engine heap|vectorized`` selects the
  refine-stage engine and ``--filter-engine heap|vectorized`` the
  filter-stage k'-ANNS engine (bit-identical results either way).
* ``demo``   — one-command end-to-end demo on a synthetic dataset with a
  recall report.
* ``info``   — inspect an index without keys: backend kind, shard
  layout, tombstones, storage accounting, and the persisted v2/v3 build
  metadata (``build_mode``, ``build_workers``, the encrypt/build
  seconds split); for a v4 journaled store it adds the journal ledger
  (generation, segment count, byte split); ``--json`` for the
  machine-readable form.
* ``compact`` — maintenance: drop every tombstone from an index on
  disk by rebuilding its filter structures (per shard when sharded).
  Works on both ``.npz`` files (rewritten in place) and v4 journaled
  stores (delta segments folded into a fresh base generation).
* ``serve``  — the online path: replay a query file through a
  :class:`~repro.serve.frontend.ServingFrontend` one query at a time
  (optionally at a Poisson ``--rate``); the server forms the
  micro-batches (``--max-batch`` / ``--batch-window``) and the command
  reports throughput, latency percentiles, and the batch-size
  histogram (``--json`` emits the full metrics snapshot).
* ``workload`` — synthetic serving benchmark: build a scheme, replay an
  open-loop workload through the frontend *and* through the sequential
  one-query-at-a-time path, and report the micro-batching speedup.
* ``listen`` — the network server: load an index, wrap its serving
  frontend in the ``repro.net`` TCP server, and accept wire-protocol
  clients until interrupted.  ``--tenant KEYID[:TOKEN[:QUOTA[:RATE]]]``
  (repeatable) registers the admitted tenants — in-flight quota plus an
  optional token-bucket rate in queries/second; with no ``--tenant``
  the index's own DCE ``key_id`` is admitted without credentials.
  ``--max-connections`` caps concurrent connections server-wide.
* ``serve --connect HOST:PORT`` — remote mode: encrypt the query file
  locally (keys never leave this side), replay it through a
  :class:`~repro.net.client.NetClient` against a ``listen`` server,
  and report the same serving statistics plus the server's tenancy
  view.

The index file contains no key material; the key file must be kept by
the owner/user only (see ``repro.core.persistence``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.backends import available_backends
from repro.core.errors import ParameterError
from repro.core.build import BUILD_MODES
from repro.core.executor import EXECUTOR_MODES
from repro.core.journal import IndexJournal
from repro.core.maintenance import compact_index
from repro.core.persistence import load_index, load_keys, save_index, save_keys
from repro.core.filterengine import available_filter_engines
from repro.core.refine import available_refine_engines
from repro.core.sharding import SHARD_STRATEGIES
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.datasets import compute_ground_truth, make_dataset
from repro.datasets.loaders import read_fvecs
from repro.eval.metrics import recall_at_k
from repro.hnsw.graph import HNSWParams
from repro.net import (
    DEFAULT_MAX_BODY_BYTES,
    NetClient,
    NetServer,
    TenantAdmission,
    TenantConfig,
    TenantRegistry,
)
from repro.net.server import DEFAULT_FRAME_TIMEOUT
from repro.serve import replay_open_loop

__all__ = ["main", "build_parser"]


def _load_vectors(path: str) -> np.ndarray:
    """Read a database file by extension (.fvecs or .npy)."""
    if path.endswith(".fvecs"):
        return read_fvecs(path)
    if path.endswith(".npy"):
        return np.load(path)
    raise SystemExit(f"unsupported database format: {path} (use .fvecs or .npy)")


def _parse_tenant_spec(spec: str) -> TenantConfig:
    """Parse a ``--tenant KEYID[:TOKEN[:QUOTA[:RATE]]]`` specification."""
    parts = spec.split(":", 3)
    try:
        key_id = int(parts[0])
    except ValueError:
        raise SystemExit(
            f"invalid --tenant spec {spec!r}: key_id must be an integer"
        ) from None
    token = parts[1] if len(parts) > 1 and parts[1] else None
    quota = None
    if len(parts) > 2 and parts[2]:
        try:
            quota = int(parts[2])
        except ValueError:
            raise SystemExit(
                f"invalid --tenant spec {spec!r}: quota must be an integer"
            ) from None
    rate = None
    if len(parts) > 3 and parts[3]:
        try:
            rate = float(parts[3])
        except ValueError:
            raise SystemExit(
                f"invalid --tenant spec {spec!r}: rate must be a number"
            ) from None
    try:
        return TenantConfig(key_id, token=token, max_in_flight=quota, rate=rate)
    except Exception as exc:
        raise SystemExit(f"invalid --tenant spec {spec!r}: {exc}") from None


def _validate_resilience_args(args: argparse.Namespace) -> None:
    """Reject bad ``--deadline-ms`` / ``--retries`` before any work runs."""
    if args.deadline_ms is not None and args.deadline_ms <= 0:
        raise ParameterError(
            f"--deadline-ms must be a positive integer, got {args.deadline_ms}"
        )
    if args.retries < 0:
        raise ParameterError(f"--retries must be >= 0, got {args.retries}")


def _parse_hostport(spec: str) -> "tuple[str, int]":
    """Parse a ``HOST:PORT`` address specification."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise SystemExit(f"invalid address {spec!r} (expected HOST:PORT)")
    try:
        return host, int(port)
    except ValueError:
        raise SystemExit(f"invalid port in address {spec!r}") from None


def _add_executor_args(command: argparse.ArgumentParser) -> None:
    """The ``--executor`` / ``--workers`` pair shared by serving commands."""
    command.add_argument(
        "--executor",
        choices=EXECUTOR_MODES,
        default=None,
        help="batch execution mode: 'threads' (default) or 'processes' "
        "(shared-memory data plane; bit-identical answers)",
    )
    command.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --executor processes "
        "(default: the executor pool width; REPRO_WORKERS overrides)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-preserving k-ANN search (ICDE 2025 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="encrypt a database and build the index")
    build.add_argument("database", help="input vectors (.fvecs or .npy)")
    build.add_argument(
        "--index",
        required=True,
        help="output index: an .npz file, or a directory with "
        "--format journal",
    )
    build.add_argument(
        "--format",
        choices=("npz", "journal"),
        default="npz",
        help="index store layout: a single .npz snapshot, or a v4 "
        "journaled directory whose later inserts/deletes append delta "
        "segments instead of rewriting the base",
    )
    build.add_argument("--keys", required=True, help="output secret key file (.npz)")
    build.add_argument("--beta", type=float, required=True, help="DCPE noise budget")
    build.add_argument("--scale", type=float, default=1024.0, help="DCPE scale")
    build.add_argument(
        "--backend",
        choices=available_backends(),
        default="hnsw",
        help="filter-phase backend over the DCPE ciphertexts",
    )
    build.add_argument("--m", type=int, default=16, help="HNSW degree")
    build.add_argument("--ef-construction", type=int, default=200)
    build.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the filter structures into N shards "
        "(>= 2 enables scatter-gather answering)",
    )
    build.add_argument(
        "--shard-strategy",
        choices=SHARD_STRATEGIES,
        default="round_robin",
        help="how vector ids map to shards",
    )
    build.add_argument(
        "--build-workers",
        type=int,
        default=None,
        help="parallel shard-build concurrency cap (default: the full "
        "worker pool; results are bit-identical at any setting)",
    )
    build.add_argument(
        "--build-mode",
        choices=BUILD_MODES,
        default="sequential",
        help="HNSW construction path (bulk is vectorized and "
        "bit-identical to sequential from the same seed)",
    )
    build.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON build report (encrypt/build cost split, "
        "per-shard build timings, storage accounting)",
    )
    build.add_argument("--seed", type=int, default=None)

    query = commands.add_parser("query", help="answer k-ANN queries over an index")
    query.add_argument("--index", required=True, help="index file from 'build'")
    query.add_argument("--keys", required=True, help="key file from 'build'")
    query.add_argument("--queries", required=True, help="query vectors (.fvecs or .npy)")
    query.add_argument("-k", type=int, default=10)
    query.add_argument(
        "--ratio-k",
        type=int,
        default=None,
        help="k'/k multiplier (default: 8 for full search, 1 for --filter-only)",
    )
    query.add_argument("--ef-search", type=int, default=None)
    query.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: the server's vectorized engine)",
    )
    query.add_argument(
        "--filter-engine",
        choices=available_filter_engines(),
        default=None,
        help="filter-stage k'-ANNS engine (default: the server's "
        "vectorized engine; bit-identical results either way)",
    )
    query.add_argument(
        "--filter-only",
        action="store_true",
        help="run the filter phase only (skip DCE refinement)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report (ids, timings, byte accounting)",
    )
    query.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="overall latency budget; retry attempts stop with "
        "DeadlineExceededError once it is spent",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=0,
        help="re-attempt transient data-plane failures this many times "
        "(capped-exponential backoff between attempts)",
    )
    _add_executor_args(query)
    query.add_argument("--seed", type=int, default=None)

    demo = commands.add_parser("demo", help="end-to-end demo on synthetic data")
    demo.add_argument("--profile", default="deep", help="dataset profile")
    demo.add_argument("-n", type=int, default=2000, help="database size")
    demo.add_argument("--queries", type=int, default=10)
    demo.add_argument("--beta", type=float, default=1.0)
    demo.add_argument("-k", type=int, default=10)
    demo.add_argument(
        "--backend",
        choices=available_backends(),
        default="hnsw",
        help="filter-phase backend",
    )
    demo.add_argument("--shards", type=int, default=1, help="filter shard count")
    demo.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: vectorized)",
    )
    demo.add_argument(
        "--filter-engine",
        choices=available_filter_engines(),
        default=None,
        help="filter-stage engine (default: vectorized)",
    )
    demo.add_argument("--seed", type=int, default=0)

    info = commands.add_parser("info", help="inspect an index (no keys needed)")
    info.add_argument(
        "--index", required=True, help="index file or journaled store from 'build'"
    )
    info.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable index report",
    )

    compact = commands.add_parser(
        "compact", help="drop tombstones from an on-disk index (no keys needed)"
    )
    compact.add_argument(
        "--index",
        required=True,
        help="index to compact: an .npz file (rewritten in place) or a "
        "v4 journaled store (folded into a fresh base generation)",
    )
    compact.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON compaction report",
    )
    compact.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for the rebuild RNG (graph backends draw levels)",
    )

    serve = commands.add_parser(
        "serve", help="answer queries through the online micro-batching frontend"
    )
    serve.add_argument(
        "--index",
        default=None,
        help="index file from 'build' (required unless --connect)",
    )
    serve.add_argument("--keys", required=True, help="key file from 'build'")
    serve.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="remote mode: replay against a running 'listen' server "
        "instead of an in-process frontend",
    )
    serve.add_argument(
        "--token",
        default=None,
        help="tenant auth token for --connect (the key file's DCE "
        "key_id is the tenant identity)",
    )
    serve.add_argument(
        "--queries", required=True, help="query vectors (.fvecs or .npy)"
    )
    serve.add_argument("-k", type=int, default=10)
    serve.add_argument("--ratio-k", type=int, default=None)
    serve.add_argument("--ef-search", type=int, default=None)
    serve.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: the server's vectorized engine)",
    )
    serve.add_argument(
        "--filter-engine",
        choices=available_filter_engines(),
        default=None,
        help="filter-stage k'-ANNS engine (default: the server's "
        "vectorized engine)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch size cap (dispatch fires when a batch fills)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="micro-batch latency window in seconds, counted from the "
        "batch's first query (0 disables batching)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=None,
        help="admission-queue bound (default: max(1024, #queries)); "
        "beyond it submissions are rejected with QueueFullError",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="LRU result-cache capacity in entries (0 disables caching)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop Poisson arrival rate in queries/second "
        "(default: submit back-to-back, the heavy-traffic limit)",
    )
    serve.add_argument(
        "--json",
        action="store_true",
        help="emit ids plus the full serving-metrics snapshot",
    )
    serve.add_argument(
        "--deadline-ms",
        type=int,
        default=None,
        help="per-query latency budget carried on every submission; "
        "expired queries are shed with DeadlineExceededError",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=0,
        help="client retry budget for transient refusals "
        "(--connect mode only)",
    )
    _add_executor_args(serve)
    serve.add_argument("--seed", type=int, default=None)

    workload = commands.add_parser(
        "workload",
        help="synthetic serving benchmark: micro-batched vs sequential",
    )
    workload.add_argument("--profile", default="deep", help="dataset profile")
    workload.add_argument("-n", type=int, default=2000, help="database size")
    workload.add_argument("--queries", type=int, default=32)
    workload.add_argument("--beta", type=float, default=1.0)
    workload.add_argument("-k", type=int, default=10)
    workload.add_argument(
        "--backend",
        choices=available_backends(),
        default="hnsw",
        help="filter-phase backend",
    )
    workload.add_argument("--shards", type=int, default=1, help="filter shard count")
    workload.add_argument("--max-batch", type=int, default=16)
    workload.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="micro-batch latency window in seconds",
    )
    workload.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop Poisson arrival rate in queries/second "
        "(default: back-to-back)",
    )
    workload.add_argument("--json", action="store_true")
    workload.add_argument("--seed", type=int, default=0)

    listen = commands.add_parser(
        "listen", help="serve wire-protocol clients over TCP (repro.net)"
    )
    listen.add_argument("--index", required=True, help="index file from 'build'")
    listen.add_argument("--host", default="127.0.0.1", help="bind address")
    listen.add_argument(
        "--port", type=int, default=7379, help="bind port (0 = ephemeral)"
    )
    listen.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="KEYID[:TOKEN[:QUOTA[:RATE]]]",
        help="admit a tenant: DCE key_id, optional auth token, optional "
        "in-flight quota, optional sustained rate in queries/second "
        "(token-bucket; repeatable; default: the index's own key_id, "
        "no token, no quota, no rate cap)",
    )
    listen.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="server-wide concurrent-connection cap; connections over "
        "it are refused with a BUSY + retry-after error",
    )
    listen.add_argument(
        "--refine-engine",
        choices=available_refine_engines(),
        default=None,
        help="refine-stage engine (default: the server's vectorized engine)",
    )
    listen.add_argument(
        "--filter-engine",
        choices=available_filter_engines(),
        default=None,
        help="filter-stage k'-ANNS engine (default: the server's "
        "vectorized engine)",
    )
    listen.add_argument("--max-batch", type=int, default=32)
    listen.add_argument(
        "--batch-window",
        type=float,
        default=0.002,
        help="micro-batch latency window in seconds",
    )
    listen.add_argument(
        "--queue-depth", type=int, default=1024, help="admission-queue bound"
    )
    listen.add_argument(
        "--cache-size", type=int, default=0, help="LRU result-cache capacity"
    )
    listen.add_argument(
        "--max-body-bytes",
        type=int,
        default=DEFAULT_MAX_BODY_BYTES,
        help="frame-body cap; larger length prefixes are refused unread",
    )
    listen.add_argument(
        "--frame-timeout",
        type=float,
        default=DEFAULT_FRAME_TIMEOUT,
        help="per-frame read deadline in seconds (slow-loris budget)",
    )
    _add_executor_args(listen)
    return parser


def _cmd_build(args: argparse.Namespace) -> int:
    vectors = _load_vectors(args.database)
    rng = np.random.default_rng(args.seed)
    owner = DataOwner(
        vectors.shape[1],
        beta=args.beta,
        scale=args.scale,
        hnsw_params=HNSWParams(m=args.m, ef_construction=args.ef_construction),
        backend=args.backend,
        shards=args.shards,
        shard_strategy=args.shard_strategy,
        build_workers=args.build_workers,
        build_mode=args.build_mode,
        rng=rng,
    )
    start = time.perf_counter()
    index = owner.build_index(vectors)
    elapsed = time.perf_counter() - start
    if args.format == "journal":
        IndexJournal.create(args.index, index)
    else:
        save_index(args.index, index)
    save_keys(args.keys, owner.authorize_user())
    report = index.size_report()
    build_report = index.build_report
    if args.json:
        payload = build_report.as_dict()
        payload.update(
            {
                "shard_strategy": getattr(index, "strategy", None),
                "storage_floats": report.total_floats,
                "dce_overhead_ratio": report.dce_overhead_ratio,
                "index_path": args.index,
                "keys_path": args.keys,
            }
        )
        print(json.dumps(payload, indent=2))
        return 0
    sharding = (
        f"shards={index.num_shards} ({index.strategy}) "
        if hasattr(index, "num_shards")
        else ""
    )
    print(
        f"built index over n={len(index)} d={index.dim} "
        f"backend={index.backend_kind} {sharding}in {elapsed:.1f}s "
        f"(encrypt {build_report.encrypt_seconds:.1f}s + "
        f"build {build_report.build_seconds:.1f}s, "
        f"mode={build_report.build_mode}); "
        f"storage {report.total_floats} floats "
        f"({report.dce_overhead_ratio:.2f}x plaintext for C_DCE)"
    )
    print(f"index -> {args.index}  (server-side, no keys)")
    print(f"keys  -> {args.keys}  (owner/user only)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.filter_only and args.refine_engine:
        raise SystemExit(
            "--refine-engine has no effect with --filter-only "
            "(the refine phase is skipped entirely)"
        )
    _validate_resilience_args(args)
    index = load_index(args.index)
    keys = load_keys(args.keys)
    user = QueryUser(keys, rng=np.random.default_rng(args.seed))
    server = CloudServer(
        index,
        refine_engine=args.refine_engine,
        filter_engine=args.filter_engine,
        executor=args.executor,
        workers=args.workers,
    )
    queries = _load_vectors(args.queries)

    encrypt_start = time.perf_counter()
    batch = user.encrypt_queries(
        queries,
        args.k,
        ratio_k=args.ratio_k,
        ef_search=args.ef_search,
        mode="filter_only" if args.filter_only else "full",
    )
    encrypt_seconds = time.perf_counter() - encrypt_start
    try:
        results = _answer_with_retries(server, batch, args)
    finally:
        server.close()

    if args.json:
        payload = {
            "backend": index.backend_kind,
            "executor": server.executor,
            "shards": getattr(index, "num_shards", 1),
            "k": args.k,
            "mode": batch.request.mode,
            "num_queries": len(batch),
            "ids": [result.ids.tolist() for result in results],
            "encrypt_seconds": encrypt_seconds,
            "server_seconds": results.total_seconds,
            "wall_seconds": results.wall_seconds,
            "filter_seconds": results.filter_seconds,
            "mask_seconds": results.mask_seconds,
            "refine_seconds": results.refine_seconds,
            "qps": results.qps,
            "upload_bytes": batch.upload_bytes(),
            "download_bytes": results.download_bytes(),
            "refine_comparisons": results.refine_comparisons,
            # The filter phase runs in every mode, so these are
            # unconditional (unlike the refine fields below).
            "filter_engine": server.filter_engine,
            "filter_kernel_seconds": results.filter_kernel_seconds,
        }
        if batch.request.mode == "full":
            payload["refine_engine"] = server.refine_engine
            payload["refine_kernel_seconds"] = results.refine_kernel_seconds
        shard_seconds = results.shard_seconds()
        if shard_seconds:
            payload["shard_seconds"] = {
                str(shard): seconds for shard, seconds in shard_seconds.items()
            }
            payload["gather_bytes"] = results.gather_bytes()
        print(json.dumps(payload, indent=2))
        return 0

    for i, result in enumerate(results):
        print(f"query {i}: {' '.join(str(x) for x in result.ids.tolist())}")
    return 0


def _answer_with_retries(server, batch, args: argparse.Namespace):
    """``server.answer`` under the ``query`` command's retry policy.

    Only :class:`~repro.core.plane.DataPlaneError` is transient here —
    the self-healing plane respawns a dead worker, so a short backoff
    and a re-run can genuinely succeed.  ``--deadline-ms`` bounds the
    whole attempt sequence.
    """
    from repro.core.plane import DataPlaneError
    from repro.serve.frontend import DeadlineExceededError

    start = time.perf_counter()
    attempt = 0
    while True:
        try:
            return server.answer(batch)
        except DataPlaneError:
            if attempt >= args.retries:
                raise
            if args.deadline_ms is not None:
                spent_ms = (time.perf_counter() - start) * 1000.0
                if spent_ms >= args.deadline_ms:
                    raise DeadlineExceededError(
                        f"latency budget of {args.deadline_ms}ms spent "
                        f"after {attempt + 1} attempt(s)"
                    ) from None
            time.sleep(min(1.0, 0.1 * (2.0 ** attempt)))
            attempt += 1


def _cmd_demo(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(args.profile, num_vectors=args.n,
                           num_queries=args.queries, rng=rng)
    owner = DataOwner(
        dataset.dim, beta=args.beta, backend=args.backend,
        shards=args.shards, rng=rng,
    )
    index = owner.build_index(dataset.database)
    server = CloudServer(
        index,
        refine_engine=args.refine_engine,
        filter_engine=args.filter_engine,
    )
    user = QueryUser(owner.authorize_user(), rng=rng)
    truth = compute_ground_truth(dataset.database, dataset.queries, args.k)
    batch = user.encrypt_queries(dataset.queries, args.k, ef_search=120)
    results = server.answer(batch)
    recalls = [
        recall_at_k(result.ids, truth.for_query(i), args.k)
        for i, result in enumerate(results)
    ]
    print(
        f"profile={args.profile} n={args.n} d={dataset.dim} beta={args.beta} "
        f"backend={index.backend_kind} refine={server.refine_engine}: "
        f"Recall@{args.k} = {np.mean(recalls):.3f}, "
        f"{results.qps:.0f} QPS (server-side)"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    journal_stats = (
        IndexJournal.open(args.index).stats() if os.path.isdir(args.index) else None
    )
    index = load_index(args.index)
    report = index.size_report()
    sharded = hasattr(index, "num_shards")
    payload = {
        "index_path": args.index,
        "backend": index.backend_kind,
        "num_vectors": int(index.sap_vectors.shape[0]),
        "live_vectors": len(index),
        "tombstones": len(index.tombstones),
        "dim": index.dim,
        "shards": index.num_shards if sharded else 1,
        "shard_strategy": index.strategy if sharded else None,
        "shard_sizes": [len(shard) for shard in index.shards] if sharded else None,
        "storage_floats": report.total_floats,
        "dce_overhead_ratio": report.dce_overhead_ratio,
        "build_report": (
            index.build_report.as_dict() if index.build_report is not None else None
        ),
        "dce_key_id": int(index.dce_database.key_id),
        # The admission state a default `listen` on this index would
        # expose: the index's own DCE key_id is the one known tenant.
        "tenancy": {
            "key_ids": [int(index.dce_database.key_id)],
            "default_tenant": {
                "key_id": int(index.dce_database.key_id),
                "authenticated": False,
                "max_in_flight": None,
            },
        },
        "journal": (
            None
            if journal_stats is None
            else {
                "generation": journal_stats.generation,
                "num_segments": journal_stats.num_segments,
                "base_bytes": journal_stats.base_bytes,
                "journal_bytes": journal_stats.journal_bytes,
                "total_bytes": journal_stats.total_bytes,
            }
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    sharding = (
        f"shards={payload['shards']} ({payload['shard_strategy']}, "
        f"sizes {payload['shard_sizes']})"
        if sharded
        else "monolithic"
    )
    print(
        f"index {args.index}: backend={payload['backend']} "
        f"n={payload['num_vectors']} ({payload['live_vectors']} live, "
        f"{payload['tombstones']} tombstoned) d={payload['dim']} {sharding}"
    )
    print(
        f"storage {report.total_floats} floats "
        f"({report.dce_overhead_ratio:.2f}x plaintext for C_DCE)"
    )
    print(f"tenancy: default tenant key_id={payload['dce_key_id']}")
    if journal_stats is not None:
        print(
            f"journal: generation {journal_stats.generation}, "
            f"{journal_stats.num_segments} delta segments "
            f"({journal_stats.base_bytes} base + "
            f"{journal_stats.journal_bytes} journal bytes)"
        )
    build = index.build_report
    if build is None:
        print("build metadata: none recorded (pre-build-pipeline file)")
    else:
        print(
            f"build metadata: mode={build.build_mode} "
            f"workers={'pool' if build.build_workers is None else build.build_workers} "
            f"(encrypt {build.encrypt_seconds:.2f}s + build {build.build_seconds:.2f}s)"
        )
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    journal = IndexJournal.open(args.index) if os.path.isdir(args.index) else None
    index = journal.load() if journal is not None else load_index(args.index)
    pending = len(index.tombstones)
    report = compact_index(index, rng=rng, journal=journal)
    if journal is None:
        # Plain snapshot: persist the compacted index over the old file.
        save_index(args.index, index)
    payload = {
        "index_path": args.index,
        "tombstones_before": pending,
        "tombstones_dropped": report.tombstones_dropped,
        "shards_compacted": report.shards_compacted,
        "seconds": report.seconds,
        "live_vectors": len(index),
        "retired_total": len(index.retired),
        "journal": (
            None
            if journal is None
            else {
                "generation": journal.generation,
                "num_segments": journal.num_segments,
            }
        ),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    if report.tombstones_dropped == 0:
        print(f"index {args.index}: no tombstones, nothing to compact")
        return 0
    folded = (
        f"; journal folded into generation {journal.generation}"
        if journal is not None
        else ""
    )
    print(
        f"compacted {args.index}: dropped {report.tombstones_dropped} "
        f"tombstones across {report.shards_compacted} shard(s) in "
        f"{report.seconds:.2f}s ({len(index)} live vectors){folded}"
    )
    return 0


def _serve_remote(args: argparse.Namespace, encrypted, key_id: int):
    """Replay through a ``listen`` server over the wire protocol."""
    host, port = _parse_hostport(args.connect)
    with NetClient(
        host, port, key_id, token=args.token, retries=args.retries
    ) as client:
        results, elapsed = replay_open_loop(
            client, encrypted, args.rate, args.seed,
            deadline_ms=args.deadline_ms,
        )
        tenancy = client.stats()
        tenancy["client_retries"] = client.retry_count
    return results, elapsed, tenancy


def _serve_local(args: argparse.Namespace, encrypted, key_id: int, index):
    """Replay through an in-process frontend, via the admission layer."""
    server = CloudServer(
        index,
        refine_engine=args.refine_engine,
        filter_engine=args.filter_engine,
        executor=args.executor,
        workers=args.workers,
    )
    queue_depth = (
        args.queue_depth
        if args.queue_depth is not None
        else max(1024, len(encrypted))
    )
    frontend = server.serving_frontend(
        max_batch_size=args.max_batch,
        batch_window_seconds=args.batch_window,
        max_queue_depth=queue_depth,
        cache_size=args.cache_size,
    )
    # The same admission path the network server uses, so the reported
    # tenancy view is the real thing, not a reconstruction.
    admission = TenantAdmission(frontend, TenantRegistry([TenantConfig(key_id)]))
    try:
        with frontend:
            channel = admission.channel(key_id)
            results, elapsed = replay_open_loop(
                channel, encrypted, args.rate, args.seed,
                deadline_ms=args.deadline_ms,
            )
            tenancy = admission.stats()
            tenancy["frontend"] = frontend.metrics.snapshot().as_dict()
            tenancy["frontend"]["executor"] = server.executor
    finally:
        server.close()
    return results, elapsed, tenancy


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.connect is None and args.index is None:
        raise SystemExit("serve needs --index (local) or --connect (remote)")
    _validate_resilience_args(args)
    if args.connect is None and args.retries:
        raise SystemExit("--retries applies to --connect mode only")
    keys = load_keys(args.keys)
    user = QueryUser(keys, rng=np.random.default_rng(args.seed))
    queries = _load_vectors(args.queries)
    encrypted = [
        user.encrypt_query(query, args.k, ratio_k=args.ratio_k,
                           ef_search=args.ef_search)
        for query in queries
    ]
    key_id = int(keys.dce_key.key_id)
    if args.connect is not None:
        results, elapsed, tenancy = _serve_remote(args, encrypted, key_id)
        index = None
    else:
        index = load_index(args.index)
        results, elapsed, tenancy = _serve_local(args, encrypted, key_id, index)
    snapshot = tenancy["frontend"]
    served_qps = len(results) / elapsed if elapsed > 0 else float("inf")

    if args.json:
        payload = {
            "backend": index.backend_kind if index is not None else None,
            "shards": getattr(index, "num_shards", 1) if index is not None else None,
            "remote": args.connect,
            "k": args.k,
            "num_queries": len(results),
            "max_batch_size": args.max_batch,
            "batch_window_seconds": args.batch_window,
            "rate": args.rate,
            "deadline_ms": args.deadline_ms,
            "client_retries": tenancy.get("client_retries", 0),
            "served_qps": served_qps,
            "ids": [result.ids.tolist() for result in results],
            "metrics": snapshot,
            "tenancy": {
                "key_ids": tenancy["key_ids"],
                "queue_depth": tenancy["queue_depth"],
                "tenants": tenancy["tenants"],
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    where = f"via {args.connect}" if args.connect else "in-process"
    print(
        f"served {len(results)} queries (k={args.k}) at {served_qps:.0f} QPS "
        f"{where} [window={args.batch_window * 1e3:.1f}ms, cap={args.max_batch}]"
    )
    print(
        f"latency p50/p95/p99 = {snapshot['latency_p50'] * 1e3:.2f}/"
        f"{snapshot['latency_p95'] * 1e3:.2f}/{snapshot['latency_p99'] * 1e3:.2f} ms; "
        f"{snapshot['batches']} micro-batches, mean size "
        f"{snapshot['mean_batch_size']:.1f}, max queue depth "
        f"{snapshot['max_queue_depth']}"
    )
    tenant = tenancy["tenants"].get(str(key_id), {})
    print(
        f"tenant {key_id}: {tenant.get('completed', 0)} completed, "
        f"{tenant.get('rejected', 0)} rejected, quota "
        f"{tenant.get('max_in_flight') or 'unbounded'}"
    )
    return 0


def _cmd_listen(args: argparse.Namespace) -> int:
    index = load_index(args.index)
    server = CloudServer(
        index,
        refine_engine=args.refine_engine,
        filter_engine=args.filter_engine,
        executor=args.executor,
        workers=args.workers,
    )
    tenants = [_parse_tenant_spec(spec) for spec in args.tenant] or [
        TenantConfig(int(index.dce_database.key_id))
    ]
    frontend = server.serving_frontend(
        max_batch_size=args.max_batch,
        batch_window_seconds=args.batch_window,
        max_queue_depth=args.queue_depth,
        cache_size=args.cache_size,
    )
    with server, frontend:
        net = NetServer(
            frontend,
            tenants,
            host=args.host,
            port=args.port,
            max_body_bytes=args.max_body_bytes,
            frame_timeout=args.frame_timeout,
            max_connections=args.max_connections,
        )
        host, port = net.address
        print(
            f"listening on {host}:{port} "
            f"(backend={index.backend_kind}, executor={server.executor}, "
            f"tenants={net.registry.key_ids()}); Ctrl-C to stop",
            flush=True,
        )
        net.serve_until_interrupt()
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    dataset = make_dataset(args.profile, num_vectors=args.n,
                           num_queries=args.queries, rng=rng)
    owner = DataOwner(
        dataset.dim, beta=args.beta, backend=args.backend,
        shards=args.shards, rng=rng,
    )
    index = owner.build_index(dataset.database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=rng)
    encrypted = [user.encrypt_query(q, args.k) for q in dataset.queries]

    sequential_start = time.perf_counter()
    sequential = [server.answer(query) for query in encrypted]
    sequential_seconds = time.perf_counter() - sequential_start

    frontend = server.serving_frontend(
        max_batch_size=args.max_batch,
        batch_window_seconds=args.batch_window,
        max_queue_depth=max(1024, len(encrypted)),
    )
    with frontend:
        served, served_seconds = replay_open_loop(
            frontend, encrypted, args.rate, args.seed
        )
        snapshot = frontend.metrics.snapshot()

    matched = all(
        np.array_equal(a.ids, b.ids) for a, b in zip(sequential, served)
    )
    sequential_qps = (
        len(encrypted) / sequential_seconds if sequential_seconds > 0 else 0.0
    )
    served_qps = len(encrypted) / served_seconds if served_seconds > 0 else 0.0
    speedup = served_qps / sequential_qps if sequential_qps > 0 else float("inf")

    if args.json:
        payload = {
            "profile": args.profile,
            "n": args.n,
            "dim": dataset.dim,
            "backend": index.backend_kind,
            "shards": getattr(index, "num_shards", 1),
            "k": args.k,
            "num_queries": len(encrypted),
            "max_batch_size": args.max_batch,
            "batch_window_seconds": args.batch_window,
            "rate": args.rate,
            "sequential_qps": sequential_qps,
            "served_qps": served_qps,
            "speedup": speedup,
            "ids_match": matched,
            "metrics": snapshot.as_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"profile={args.profile} n={args.n} d={dataset.dim} "
        f"backend={index.backend_kind} q={len(encrypted)}: "
        f"sequential {sequential_qps:.0f} QPS -> micro-batched "
        f"{served_qps:.0f} QPS ({speedup:.2f}x), mean batch "
        f"{snapshot.mean_batch_size:.1f}, ids {'match' if matched else 'DIVERGED'}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "build": _cmd_build,
        "query": _cmd_query,
        "demo": _cmd_demo,
        "info": _cmd_info,
        "compact": _cmd_compact,
        "serve": _cmd_serve,
        "workload": _cmd_workload,
        "listen": _cmd_listen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
