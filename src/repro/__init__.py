"""repro — reproduction of "Privacy-Preserving Approximate Nearest Neighbor
Search on High-Dimensional Data" (Liu, Zhang, Xie, Li, Yu, Cui; ICDE 2025).

The package implements the paper's complete system and its evaluation:

* :mod:`repro.core` — Distance Comparison Encryption (DCE), DCPE
  (Scale-and-Perturb), the privacy-preserving index, the staged
  filter-and-refine search pipeline, system roles and index
  maintenance.
* :mod:`repro.serve` — the online micro-batching serving layer:
  bounded admission, scheduler-formed micro-batches, result caching,
  serving metrics.
* :mod:`repro.hnsw` — HNSW and NSG proximity graphs built from scratch.
* :mod:`repro.lsh` — E2LSH, the index substrate of two baselines.
* :mod:`repro.baselines` — ASPE (+ broken enhanced variants), AME,
  HNSW-AME, DCE linear scan, RS-SANN, PACM-ANN, PRI-ANN.
* :mod:`repro.crypto` — AES-128/CTR, 2-server PIR, random matrices and
  permutations.
* :mod:`repro.attacks` — the executable KPA attacks of Section III.
* :mod:`repro.datasets` / :mod:`repro.eval` — workloads and the
  experiment harness regenerating every table and figure of Section VII.

Quickstart (batch-first API)::

    import numpy as np
    from repro import PPANNS

    rng = np.random.default_rng(0)
    data = rng.standard_normal((5000, 64))
    queries = rng.standard_normal((256, 64))

    scheme = PPANNS(dim=64, beta=1.0, rng=rng).fit(data)
    batch = scheme.query_batch(queries, k=10, ratio_k=8)
    ids = batch.ids                      # (256, 10) neighbor-id matrix

    # Single queries and other filter backends work the same way:
    ids0 = scheme.query(queries[0], k=10)
    nsg = PPANNS(dim=64, beta=1.0, backend="nsg", rng=rng).fit(data)
"""

from repro.core import (
    BUILD_MODES,
    PPANNS,
    BuildReport,
    CloudServer,
    DataOwner,
    DCEScheme,
    DCPEScheme,
    EncryptedIndex,
    EncryptedQuery,
    EncryptedQueryBatch,
    FilterBackend,
    QueryUser,
    SearchRequest,
    SearchResult,
    SearchResultBatch,
    SecretKeyBundle,
    ShardedEncryptedIndex,
    ShardTiming,
    available_backends,
    build_backend,
    build_sharded_index,
    execute_batch,
    filter_and_refine,
)
from repro.hnsw import HNSWIndex, HNSWParams
from repro.serve import BatchScheduler, QueueFullError, ServerMetrics, ServingFrontend

__version__ = "1.0.0"


def __getattr__(name: str):
    """Forward deprecated names to their owning module (warn on access)."""
    if name == "SearchReport":
        # Triggers repro.core.protocol's DeprecationWarning.
        from repro.core import protocol

        return protocol.SearchReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "PPANNS",
    "DataOwner",
    "QueryUser",
    "CloudServer",
    "SecretKeyBundle",
    "DCEScheme",
    "DCPEScheme",
    "EncryptedIndex",
    "ShardedEncryptedIndex",
    "ShardTiming",
    "build_sharded_index",
    "BUILD_MODES",
    "BuildReport",
    "SearchRequest",
    "EncryptedQuery",
    "EncryptedQueryBatch",
    "SearchResult",
    "SearchResultBatch",
    "SearchReport",  # noqa: F822  (module __getattr__, deprecated alias)
    "FilterBackend",
    "available_backends",
    "build_backend",
    "filter_and_refine",
    "execute_batch",
    "HNSWIndex",
    "HNSWParams",
    "ServingFrontend",
    "BatchScheduler",
    "ServerMetrics",
    "QueueFullError",
    "__version__",
]
