"""repro — reproduction of "Privacy-Preserving Approximate Nearest Neighbor
Search on High-Dimensional Data" (Liu, Zhang, Xie, Li, Yu, Cui; ICDE 2025).

The package implements the paper's complete system and its evaluation:

* :mod:`repro.core` — Distance Comparison Encryption (DCE), DCPE
  (Scale-and-Perturb), the privacy-preserving index, filter-and-refine
  search, system roles and index maintenance.
* :mod:`repro.hnsw` — HNSW and NSG proximity graphs built from scratch.
* :mod:`repro.lsh` — E2LSH, the index substrate of two baselines.
* :mod:`repro.baselines` — ASPE (+ broken enhanced variants), AME,
  HNSW-AME, DCE linear scan, RS-SANN, PACM-ANN, PRI-ANN.
* :mod:`repro.crypto` — AES-128/CTR, 2-server PIR, random matrices and
  permutations.
* :mod:`repro.attacks` — the executable KPA attacks of Section III.
* :mod:`repro.datasets` / :mod:`repro.eval` — workloads and the
  experiment harness regenerating every table and figure of Section VII.

Quickstart::

    import numpy as np
    from repro import PPANNS

    rng = np.random.default_rng(0)
    data = rng.standard_normal((5000, 64))
    scheme = PPANNS(dim=64, beta=1.0, rng=rng).fit(data)
    ids = scheme.query(data[0], k=10, ratio_k=8)
"""

from repro.core import (
    PPANNS,
    CloudServer,
    DataOwner,
    DCEScheme,
    DCPEScheme,
    EncryptedIndex,
    EncryptedQuery,
    QueryUser,
    SearchReport,
    SecretKeyBundle,
    filter_and_refine,
)
from repro.hnsw import HNSWIndex, HNSWParams

__version__ = "1.0.0"

__all__ = [
    "PPANNS",
    "DataOwner",
    "QueryUser",
    "CloudServer",
    "SecretKeyBundle",
    "DCEScheme",
    "DCPEScheme",
    "EncryptedIndex",
    "EncryptedQuery",
    "SearchReport",
    "filter_and_refine",
    "HNSWIndex",
    "HNSWParams",
    "__version__",
]
