"""Squared-Euclidean distance kernels.

The paper measures everything in squared Euclidean distance
``dist(p, q) = sum_i (p_i - q_i)^2`` (Section II-C); squaring preserves
nearest-neighbor order and avoids the sqrt.  These helpers are the single
place distance computations happen, so operation accounting (a "normal
distance computation" = ``d`` MACs, against which DCE's ``4d+32`` is
compared) stays consistent across the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_distance",
    "squared_distances_to_many",
    "pairwise_squared_distances",
    "distance_mac_count",
]


def distance_mac_count(dim: int) -> int:
    """Multiply-accumulate count of one plaintext distance computation."""
    return dim


def squared_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two 1-D vectors."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(diff @ diff)


def squared_distances_to_many(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Squared distances from one query to each row of ``vectors``.

    This is the hot path of graph search — one call per node expansion —
    so it stays a single fused numpy expression.
    """
    diff = vectors - query
    return np.einsum("ij,ij->i", diff, diff)


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All squared distances between rows of ``a`` (n, d) and ``b`` (m, d).

    Uses the ``||a||^2 - 2ab + ||b||^2`` expansion with clipping at zero
    (the expansion can go slightly negative in floats).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norms = np.einsum("ij,ij->i", a, a)[:, None]
    b_norms = np.einsum("ij,ij->i", b, b)[None, :]
    cross = a @ b.T
    return np.maximum(a_norms - 2.0 * cross + b_norms, 0.0)
