"""Squared-Euclidean distance kernels.

The paper measures everything in squared Euclidean distance
``dist(p, q) = sum_i (p_i - q_i)^2`` (Section II-C); squaring preserves
nearest-neighbor order and avoids the sqrt.  These helpers are the single
place distance computations happen, so operation accounting (a "normal
distance computation" = ``d`` MACs, against which DCE's ``4d+32`` is
compared) stays consistent across the library.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "squared_distance",
    "squared_distances_to_many",
    "pairwise_squared_distances",
    "gemm_topk_preselect",
    "distance_mac_count",
]


def distance_mac_count(dim: int) -> int:
    """Multiply-accumulate count of one plaintext distance computation."""
    return dim


def squared_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two 1-D vectors."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return float(diff @ diff)


def squared_distances_to_many(query: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Squared distances from one query to each row of ``vectors``.

    This is the hot path of graph search — one call per node expansion —
    so it stays a single fused numpy expression.
    """
    diff = vectors - query
    return np.einsum("ij,ij->i", diff, diff)


def pairwise_squared_distances(
    a: np.ndarray, b: np.ndarray, b_norms: np.ndarray | None = None
) -> np.ndarray:
    """All squared distances between rows of ``a`` (n, d) and ``b`` (m, d).

    Uses the ``||a||^2 - 2ab + ||b||^2`` expansion with clipping at zero
    (the expansion can go slightly negative in floats).  ``b_norms`` lets
    callers that sweep many query batches against one fixed matrix cache
    the per-row ``||b||^2`` term (shape ``(m,)``).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norms = np.einsum("ij,ij->i", a, a)[:, None]
    if b_norms is None:
        b_norms = np.einsum("ij,ij->i", b, b)
    cross = a @ b.T
    return np.maximum(a_norms - 2.0 * cross + b_norms[None, :], 0.0)


def gemm_topk_preselect(approx_row, kk, exact_for, candidate_cap=None):
    """Tie-free top-``kk`` selection from approximate (GEMM) distances.

    ``approx_row`` holds norm-expansion distances whose float error
    against the per-row diff kernel is bounded well below a 1e-9
    relative slack.  Candidates within that slack of the ``kk``-th
    smallest approximate value are re-scored exactly via
    ``exact_for(positions)`` (which must use the same kernel the
    per-query oracle uses), and the selection is returned only when it
    is *provably* identical to a stable exact sort: any tie at or
    inside the boundary, or a boundary the candidate slack cannot
    cover, returns ``None`` so the caller falls back to the oracle
    path.  Returns ``(positions, exact_values)`` nearest-first.
    """
    thr = float(np.partition(approx_row, kk - 1)[kk - 1])
    eps = 1e-9 * (1.0 + float(approx_row.max()))
    cand = np.flatnonzero(approx_row <= thr + 2.0 * eps)
    if candidate_cap is not None and cand.shape[0] > candidate_cap:
        return None
    exact = exact_for(cand)
    order = np.argsort(exact, kind="stable")
    vals = exact[order]
    if vals.shape[0] > kk and vals[kk - 1] == vals[kk]:
        return None  # boundary tie with an excluded candidate
    top_vals = vals[:kk]
    if np.any(top_vals[1:] == top_vals[:-1]):
        return None  # tie inside the selection: oracle tie order differs
    if float(top_vals[-1]) >= thr + eps:
        return None  # candidate set does not provably cover the top-kk
    return cand[order[:kk]], top_vals
