"""Hierarchical Navigable Small World graphs, from scratch.

Implements Malkov & Yashunin (TPAMI 2020): a multi-layer proximity graph
where layer assignment is geometric (``floor(-ln U * mL)``), upper layers
form a coarse navigation skeleton and layer 0 contains every vector.
Insertion greedily descends from the entry point, then runs an
``ef_construction``-wide beam search per layer and links to ``M`` diverse
neighbors chosen by the *heuristic* selection rule (Algorithm 4 of the
HNSW paper), which prunes candidates dominated by an already-selected
neighbor.

In the PP-ANNS scheme the vectors handed to this index are **DCPE
ciphertexts**, never plaintexts (Section V-A): the graph's edges then only
reflect approximate neighbor relations, which is part of the privacy
argument.  The index itself is metric-agnostic — it just sees vectors.

Search (``search``) is the standard layered beam search returning the
``ef_search``-quality top-k with per-query :class:`SearchStats` so the
evaluation harness can report distance-computation counts and hops.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import squared_distances_to_many

__all__ = ["HNSWParams", "HNSWIndex", "SearchStats"]


@dataclass(frozen=True)
class HNSWParams:
    """Construction parameters of an HNSW graph.

    Attributes
    ----------
    m:
        Out-degree target for layers >= 1; layer 0 allows ``2*m``.
        The paper's experiments use ``m=40`` on million-scale data; our
        scaled-down defaults follow the common ``m=16``.
    ef_construction:
        Beam width during insertion (paper: 600 at million scale).
    level_multiplier:
        ``mL`` of the geometric level distribution; defaults to
        ``1/ln(m)`` as recommended.
    extend_candidates:
        Whether the selection heuristic also examines neighbors of
        candidates (HNSW paper Algorithm 4 option).
    keep_pruned:
        Whether to backfill pruned candidates up to ``M`` links.
    """

    m: int = 16
    ef_construction: int = 200
    level_multiplier: float | None = None
    extend_candidates: bool = False
    keep_pruned: bool = True

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ParameterError(f"m must be >= 2, got {self.m}")
        if self.ef_construction < 1:
            raise ParameterError(
                f"ef_construction must be >= 1, got {self.ef_construction}"
            )

    @property
    def ml(self) -> float:
        """Effective level multiplier."""
        if self.level_multiplier is not None:
            return self.level_multiplier
        return 1.0 / math.log(self.m)

    def max_degree(self, level: int) -> int:
        """Maximum out-degree at ``level`` (``2m`` at level 0, ``m`` above)."""
        return 2 * self.m if level == 0 else self.m


@dataclass
class SearchStats:
    """Per-query instrumentation of a graph search.

    Attributes
    ----------
    distance_computations:
        Number of query-to-vector distance evaluations.
    hops:
        Number of node expansions across all layers.
    """

    distance_computations: int = 0
    hops: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's stats into this one."""
        self.distance_computations += other.distance_computations
        self.hops += other.hops


@dataclass
class _Node:
    """Internal per-vector record: its top level and per-level adjacency."""

    level: int
    neighbors: list[list[int]] = field(default_factory=list)


class HNSWIndex:
    """An HNSW graph over a set of vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    params:
        Construction parameters.
    rng:
        Randomness for level assignment.

    Notes
    -----
    Vectors are stored in insertion order and addressed by integer ids
    ``0..n-1``; the PP-ANNS scheme uses the same ids for the DCE ciphertext
    array, so the refine phase can cross-reference candidates directly.
    """

    def __init__(
        self,
        dim: int,
        params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._params = params if params is not None else HNSWParams()
        self._rng = rng if rng is not None else np.random.default_rng()
        # Amortized-doubling storage so bulk builds avoid O(n^2) copying.
        self._buffer = np.empty((16, dim))
        self._nodes: list[_Node] = []
        self._entry_point: int | None = None
        self._max_level = -1
        self._deleted: set[int] = set()

    # -- properties ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def params(self) -> HNSWParams:
        """Construction parameters."""
        return self._params

    @property
    def size(self) -> int:
        """Number of live (non-deleted) vectors."""
        return len(self._nodes) - len(self._deleted)

    @property
    def max_level(self) -> int:
        """Highest layer currently in the graph (-1 when empty)."""
        return self._max_level

    @property
    def entry_point(self) -> int | None:
        """Id of the current global entry point."""
        return self._entry_point

    @property
    def vectors(self) -> np.ndarray:
        """The stored vectors, including any deleted slots."""
        return self._buffer[: len(self._nodes)]

    def neighbors(self, node: int, level: int = 0) -> list[int]:
        """Out-neighbors of ``node`` at ``level`` (copy)."""
        record = self._nodes[node]
        if level > record.level:
            return []
        return list(record.neighbors[level])

    def node_level(self, node: int) -> int:
        """Top layer of ``node``."""
        return self._nodes[node].level

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been marked deleted."""
        return node in self._deleted

    # -- construction ---------------------------------------------------------

    def _draw_level(self) -> int:
        uniform = self._rng.uniform(0.0, 1.0)
        # Guard against log(0).
        uniform = max(uniform, 1e-300)
        return int(-math.log(uniform) * self._params.ml)

    def build(self, vectors: np.ndarray) -> "HNSWIndex":
        """Bulk-build the graph by inserting each row in order.

        Returns ``self`` for chaining.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="build input")
        for row in vectors:
            self.insert(row)
        return self

    def insert(self, vector: np.ndarray) -> int:
        """Insert one vector, returning its id."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        node_id = len(self._nodes)
        level = self._draw_level()
        if node_id >= self._buffer.shape[0]:
            grown = np.empty((2 * self._buffer.shape[0], self._dim))
            grown[:node_id] = self._buffer[:node_id]
            self._buffer = grown
        self._buffer[node_id] = vector
        self._nodes.append(
            _Node(level=level, neighbors=[[] for _ in range(level + 1)])
        )
        if self._entry_point is None:
            self._entry_point = node_id
            self._max_level = level
            return node_id

        current = self._entry_point
        # Greedy descent through layers above the new node's level.
        for layer in range(self._max_level, level, -1):
            current = self._greedy_closest(vector, current, layer)
        # Beam search + heuristic linking on the remaining layers.
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._nodes[node_id].neighbors[layer] = [item for _, item in selected]
            for _, neighbor in selected:
                self._link(neighbor, node_id, layer)
            if candidates:
                current = candidates[0][1]
        if level > self._max_level:
            self._max_level = level
            self._entry_point = node_id
        return node_id

    def _link(self, source: int, target: int, layer: int) -> None:
        """Add edge source->target at ``layer``, shrinking with the heuristic."""
        neighbor_list = self._nodes[source].neighbors[layer]
        if target in neighbor_list:
            return
        neighbor_list.append(target)
        max_degree = self._params.max_degree(layer)
        if len(neighbor_list) > max_degree:
            source_vector = self._buffer[source]
            dists = squared_distances_to_many(
                source_vector, self._buffer[neighbor_list]
            )
            candidates = sorted(zip(dists.tolist(), neighbor_list))
            selected = self._heuristic_prune(source_vector, candidates, max_degree)
            self._nodes[source].neighbors[layer] = [item for _, item in selected]

    def _select_neighbors(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
        layer: int,
    ) -> list[tuple[float, int]]:
        """HNSW Algorithm 4: pick up to ``count`` diverse neighbors."""
        if self._params.extend_candidates:
            seen = {item for _, item in candidates}
            extended = list(candidates)
            for _, item in candidates:
                for neighbor in self._nodes[item].neighbors[layer] if layer <= self._nodes[item].level else []:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        dist = float(
                            squared_distances_to_many(
                                vector, self._buffer[neighbor][np.newaxis]
                            )[0]
                        )
                        extended.append((dist, neighbor))
            candidates = sorted(extended)
        return self._heuristic_prune(vector, candidates, count)

    def _heuristic_prune(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[tuple[float, int]]:
        """Keep candidates not dominated by an already-selected neighbor.

        A candidate ``c`` is dominated when some selected ``s`` satisfies
        ``dist(c, s) < dist(c, query_vector)`` — the core diversification
        rule that gives HNSW graphs their navigability.
        """
        selected: list[tuple[float, int]] = []
        pruned: list[tuple[float, int]] = []
        for dist, item in sorted(candidates):
            if len(selected) >= count:
                break
            item_vector = self._buffer[item]
            dominated = False
            if selected:
                selected_ids = [sid for _, sid in selected]
                to_selected = squared_distances_to_many(
                    item_vector, self._buffer[selected_ids]
                )
                dominated = bool(np.any(to_selected < dist))
            if dominated:
                pruned.append((dist, item))
            else:
                selected.append((dist, item))
        if self._params.keep_pruned:
            for dist, item in pruned:
                if len(selected) >= count:
                    break
                selected.append((dist, item))
        return selected

    # -- search ----------------------------------------------------------------

    def _greedy_closest(self, query: np.ndarray, start: int, layer: int) -> int:
        """Greedy walk to a local minimum of distance-to-query at ``layer``."""
        current = start
        current_dist = float(
            squared_distances_to_many(query, self._buffer[current][np.newaxis])[0]
        )
        improved = True
        while improved:
            improved = False
            neighbor_ids = self._nodes[current].neighbors[layer]
            if not neighbor_ids:
                break
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbor_ids[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        stats: SearchStats | None = None,
    ) -> list[tuple[float, int]]:
        """Beam search at one layer; returns up to ``ef`` (dist, id) ascending."""
        visited = set(entry_points)
        entry_dists = squared_distances_to_many(query, self._buffer[entry_points])
        if stats is not None:
            stats.distance_computations += len(entry_points)
        candidates = [(float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(candidates)  # min-heap by distance
        results = [(-float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(results)  # max-heap via negation
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            if stats is not None:
                stats.hops += 1
            neighbor_ids = [
                n for n in self._nodes[node].neighbors[layer] if n not in visited
            ]
            if not neighbor_ids:
                continue
            visited.update(neighbor_ids)
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            if stats is not None:
                stats.distance_computations += len(neighbor_ids)
            bound = -results[0][0] if len(results) >= ef else math.inf
            for neighbor_dist, neighbor in zip(dists.tolist(), neighbor_ids):
                if neighbor_dist < bound or len(results) < ef:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    bound = -results[0][0] if len(results) >= ef else math.inf
        ordered = sorted((-negated, item) for negated, item in results)
        return ordered

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k-ANN search: returns ``(ids, squared_distances)`` nearest-first.

        Parameters
        ----------
        query:
            Query vector (same space as the indexed vectors — DCPE
            ciphertexts in the PP-ANNS scheme).
        k:
            Number of neighbors to return.
        ef_search:
            Beam width at layer 0; defaults to ``max(k, 2m)``.  Larger
            values trade throughput for recall (the x-axis sweeps in the
            paper's figures).
        stats:
            Optional accumulator for instrumentation.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, query.shape[-1], what="query")
        if self._entry_point is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.m)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        current = self._entry_point
        for layer in range(self._max_level, 0, -1):
            current = self._greedy_closest(query, current, layer)
        found = self._search_layer(query, [current], ef, 0, stats=stats)
        live = [(dist, item) for dist, item in found if item not in self._deleted]
        top = live[:k]
        ids = np.array([item for _, item in top], dtype=np.int64)
        dists = np.array([dist for dist, _ in top])
        return ids, dists

    # -- maintenance -------------------------------------------------------------

    def mark_deleted(self, node: int) -> None:
        """Mark ``node`` deleted so searches skip it (edges remain)."""
        if not 0 <= node < len(self._nodes):
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)
        if node == self._entry_point:
            self._reassign_entry_point()

    def in_neighbors(self, node: int, layer: int = 0) -> list[int]:
        """Ids of live nodes with an edge *into* ``node`` at ``layer``."""
        sources = []
        for candidate, record in enumerate(self._nodes):
            if candidate in self._deleted or candidate == node:
                continue
            if layer <= record.level and node in record.neighbors[layer]:
                sources.append(candidate)
        return sources

    def remove_edges_to(self, node: int) -> None:
        """Drop every edge pointing at ``node`` (deletion, Section V-D)."""
        for record in self._nodes:
            for layer_neighbors in record.neighbors:
                if node in layer_neighbors:
                    layer_neighbors.remove(node)

    def repair_node(self, node: int) -> None:
        """Re-link ``node`` by re-running neighbor selection on every layer.

        Used after a deletion disturbed this node's out-neighborhood
        (Section V-D: re-insert each in-neighbor of the deleted vector).
        """
        vector = self._buffer[node]
        entry = self._entry_point
        if entry is None or entry == node:
            return
        current = entry
        node_level = self._nodes[node].level
        for layer in range(self._max_level, node_level, -1):
            current = self._greedy_closest(vector, current, layer)
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(node_level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            candidates = [
                (dist, item)
                for dist, item in candidates
                if item != node and item not in self._deleted
            ]
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._nodes[node].neighbors[layer] = [item for _, item in selected]
            for _, neighbor in selected:
                self._link(neighbor, node, layer)
            if candidates:
                current = candidates[0][1]

    def _reassign_entry_point(self) -> None:
        """Pick a new entry point after the old one was deleted."""
        best: int | None = None
        best_level = -1
        for candidate, record in enumerate(self._nodes):
            if candidate in self._deleted:
                continue
            if record.level > best_level:
                best = candidate
                best_level = record.level
        self._entry_point = best
        self._max_level = best_level

    # -- introspection -------------------------------------------------------------

    def degree_histogram(self, layer: int = 0) -> dict[int, int]:
        """Histogram of out-degrees at ``layer`` over live nodes."""
        histogram: dict[int, int] = {}
        for node, record in enumerate(self._nodes):
            if node in self._deleted or layer > record.level:
                continue
            degree = len(record.neighbors[layer])
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def edge_count(self, layer: int = 0) -> int:
        """Total directed edges at ``layer`` over live nodes."""
        return sum(
            len(record.neighbors[layer])
            for node, record in enumerate(self._nodes)
            if node not in self._deleted and layer <= record.level
        )
