"""Hierarchical Navigable Small World graphs, from scratch.

Implements Malkov & Yashunin (TPAMI 2020): a multi-layer proximity graph
where layer assignment is geometric (``floor(-ln U * mL)``), upper layers
form a coarse navigation skeleton and layer 0 contains every vector.
Insertion greedily descends from the entry point, then runs an
``ef_construction``-wide beam search per layer and links to ``M`` diverse
neighbors chosen by the *heuristic* selection rule (Algorithm 4 of the
HNSW paper), which prunes candidates dominated by an already-selected
neighbor.

In the PP-ANNS scheme the vectors handed to this index are **DCPE
ciphertexts**, never plaintexts (Section V-A): the graph's edges then only
reflect approximate neighbor relations, which is part of the privacy
argument.  The index itself is metric-agnostic — it just sees vectors.

Search (``search``) is the standard layered beam search returning the
``ef_search``-quality top-k with per-query :class:`SearchStats` so the
evaluation harness can report distance-computation counts and hops.

Two build modes exist (:data:`BUILD_MODES`).  ``sequential`` is the
seed's one-row-at-a-time insert loop and remains the oracle reference.
``bulk`` builds the *same graph bit for bit* from the same seed — all
levels are drawn up front in one vectorized RNG call (the identical
uniform stream), adjacency lives in flat preallocated int64 arrays
instead of per-node list-of-lists while the build runs, and the
neighbor-selection heuristic answers its domination tests from batched
distance kernels (one kernel call per *selected* neighbor instead of
one per *candidate*) — which cuts the interpreter dispatch the
sequential loop pays per insertion.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import squared_distances_to_many

__all__ = [
    "BUILD_MODES",
    "HNSWParams",
    "HNSWIndex",
    "SearchStats",
    "sorted_id_array",
]

#: Registered bulk-build modes: the seed's ``sequential`` insert loop
#: (the oracle reference) and the ``bulk`` vectorized path, which
#: produces a bit-identical graph from the same seed.
BUILD_MODES = ("sequential", "bulk")


def sorted_id_array(ids: "set[int]") -> np.ndarray:
    """A tombstone set as a sorted int64 array — one build, no id scan.

    Shared by every substrate's ``deleted_ids`` so the persisted
    ``*_deleted`` payloads cannot drift apart in dtype or empty-case
    handling.
    """
    if not ids:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.fromiter(ids, dtype=np.int64, count=len(ids)))


@dataclass(frozen=True)
class HNSWParams:
    """Construction parameters of an HNSW graph.

    Attributes
    ----------
    m:
        Out-degree target for layers >= 1; layer 0 allows ``2*m``.
        The paper's experiments use ``m=40`` on million-scale data; our
        scaled-down defaults follow the common ``m=16``.
    ef_construction:
        Beam width during insertion (paper: 600 at million scale).
    level_multiplier:
        ``mL`` of the geometric level distribution; defaults to
        ``1/ln(m)`` as recommended.
    extend_candidates:
        Whether the selection heuristic also examines neighbors of
        candidates (HNSW paper Algorithm 4 option).
    keep_pruned:
        Whether to backfill pruned candidates up to ``M`` links.
    """

    m: int = 16
    ef_construction: int = 200
    level_multiplier: float | None = None
    extend_candidates: bool = False
    keep_pruned: bool = True

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ParameterError(f"m must be >= 2, got {self.m}")
        if self.ef_construction < 1:
            raise ParameterError(
                f"ef_construction must be >= 1, got {self.ef_construction}"
            )

    @property
    def ml(self) -> float:
        """Effective level multiplier."""
        if self.level_multiplier is not None:
            return self.level_multiplier
        return 1.0 / math.log(self.m)

    def max_degree(self, level: int) -> int:
        """Maximum out-degree at ``level`` (``2m`` at level 0, ``m`` above)."""
        return 2 * self.m if level == 0 else self.m


@dataclass
class SearchStats:
    """Per-query instrumentation of a graph search.

    Attributes
    ----------
    distance_computations:
        Number of query-to-vector distance evaluations.
    hops:
        Number of node expansions across all layers.
    """

    distance_computations: int = 0
    hops: int = 0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's stats into this one."""
        self.distance_computations += other.distance_computations
        self.hops += other.hops


@dataclass
class _Node:
    """Internal per-vector record: its top level and per-level adjacency."""

    level: int
    neighbors: list[list[int]] = field(default_factory=list)


class _FlatAdjacency:
    """Construction-time adjacency in flat preallocated int64 arrays.

    The bulk build keeps one ``(n_layer, max_degree(layer) + 1)`` array
    and one count vector per layer instead of per-node Python lists:
    neighbor reads are slices, appends are single-cell writes, and the
    ``+ 1`` column is the transient overflow slot ``_bulk_link`` fills
    before pruning back down to the degree cap.  Each layer's rows
    cover only the nodes whose level reaches that layer (the geometric
    distribution thins ~1/m per layer), addressed through a per-layer
    node -> row map — without the remap, every upper layer would
    allocate full-``n`` rows for nodes that cannot exist there.
    Neighbor order within a row is exactly the order the sequential
    lists would hold, which is what keeps the bulk build bit-identical.
    """

    __slots__ = ("levels", "adjacency", "counts", "rows")

    def __init__(self, params: HNSWParams, levels: np.ndarray) -> None:
        n = int(levels.shape[0])
        top = int(levels.max()) if n else -1
        self.levels = levels
        self.adjacency: list[np.ndarray] = []
        self.counts: list[np.ndarray] = []
        self.rows: list[np.ndarray] = []
        for layer in range(top + 1):
            eligible = np.nonzero(levels >= layer)[0]
            row_of = np.full(n, -1, dtype=np.int64)
            row_of[eligible] = np.arange(eligible.shape[0], dtype=np.int64)
            self.rows.append(row_of)
            self.adjacency.append(
                np.full(
                    (eligible.shape[0], params.max_degree(layer) + 1),
                    -1,
                    dtype=np.int64,
                )
            )
            self.counts.append(np.zeros(eligible.shape[0], dtype=np.int64))

    def neighbors_of(self, node: int, layer: int) -> list[int]:
        """Neighbor ids of ``node`` at ``layer`` as plain ints, in order.

        Empty for a node whose level does not reach ``layer`` — the same
        answer the sequential path's level check gives.
        """
        row = self.rows[layer][node]
        if row < 0:
            return []
        return self.adjacency[layer][row, : self.counts[layer][row]].tolist()

    def replace(self, node: int, layer: int, neighbor_ids: list[int]) -> None:
        """Overwrite ``node``'s neighbor row at ``layer``."""
        row = self.rows[layer][node]
        self.adjacency[layer][row, : len(neighbor_ids)] = neighbor_ids
        self.counts[layer][row] = len(neighbor_ids)

    def to_nodes(self) -> list[_Node]:
        """Convert to the per-node list-of-lists the query path uses."""
        return [
            _Node(
                level=int(level),
                neighbors=[
                    self.neighbors_of(node, layer) for layer in range(int(level) + 1)
                ],
            )
            for node, level in enumerate(self.levels)
        ]


class HNSWIndex:
    """An HNSW graph over a set of vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    params:
        Construction parameters.
    rng:
        Randomness for level assignment.

    Notes
    -----
    Vectors are stored in insertion order and addressed by integer ids
    ``0..n-1``; the PP-ANNS scheme uses the same ids for the DCE ciphertext
    array, so the refine phase can cross-reference candidates directly.
    """

    def __init__(
        self,
        dim: int,
        params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._params = params if params is not None else HNSWParams()
        self._rng = rng if rng is not None else np.random.default_rng()
        # Amortized-doubling storage so bulk builds avoid O(n^2) copying.
        self._buffer = np.empty((16, dim))
        self._nodes: list[_Node] = []
        self._entry_point: int | None = None
        self._max_level = -1
        self._deleted: set[int] = set()

    # -- properties ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def params(self) -> HNSWParams:
        """Construction parameters."""
        return self._params

    @property
    def size(self) -> int:
        """Number of live (non-deleted) vectors."""
        return len(self._nodes) - len(self._deleted)

    @property
    def max_level(self) -> int:
        """Highest layer currently in the graph (-1 when empty)."""
        return self._max_level

    @property
    def entry_point(self) -> int | None:
        """Id of the current global entry point."""
        return self._entry_point

    @property
    def vectors(self) -> np.ndarray:
        """The stored vectors, including any deleted slots."""
        return self._buffer[: len(self._nodes)]

    def neighbors(self, node: int, level: int = 0) -> list[int]:
        """Out-neighbors of ``node`` at ``level`` (copy)."""
        record = self._nodes[node]
        if level > record.level:
            return []
        return list(record.neighbors[level])

    def node_level(self, node: int) -> int:
        """Top layer of ``node``."""
        return self._nodes[node].level

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been marked deleted."""
        return node in self._deleted

    # -- construction ---------------------------------------------------------

    def _draw_level(self) -> int:
        uniform = self._rng.uniform(0.0, 1.0)
        # Guard against log(0).
        uniform = max(uniform, 1e-300)
        return int(-math.log(uniform) * self._params.ml)

    def build(self, vectors: np.ndarray, mode: str = "sequential") -> "HNSWIndex":
        """Build the graph over ``vectors``; returns ``self`` for chaining.

        ``mode`` selects the construction path (:data:`BUILD_MODES`):
        ``sequential`` inserts each row in order (the seed loop, kept as
        the oracle reference), ``bulk`` runs the vectorized construction
        path — bit-identical output from the same RNG state, but with
        levels drawn up front, flat int64 adjacency arrays during the
        build, and batched neighbor-selection kernels.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="build input")
        if mode not in BUILD_MODES:
            raise ParameterError(
                f"unknown build mode {mode!r}; available: {', '.join(BUILD_MODES)}"
            )
        if mode == "bulk":
            return self._build_bulk(vectors)
        for row in vectors:
            self.insert(row)
        return self

    def insert(self, vector: np.ndarray, level: int | None = None) -> int:
        """Insert one vector, returning its id.

        ``level`` forces the node's top level instead of drawing it from
        the RNG — the hook journal replay (:mod:`repro.core.journal`)
        uses to re-apply a recorded insertion deterministically.  With
        the level fixed, insertion is a pure function of the current
        graph state, so replaying the recorded level reproduces the
        exact adjacency the original insert built.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        node_id = len(self._nodes)
        if level is None:
            level = self._draw_level()
        elif level < 0:
            raise ParameterError(f"level must be >= 0, got {level}")
        if node_id >= self._buffer.shape[0]:
            grown = np.empty((2 * self._buffer.shape[0], self._dim))
            grown[:node_id] = self._buffer[:node_id]
            self._buffer = grown
        self._buffer[node_id] = vector
        self._nodes.append(
            _Node(level=level, neighbors=[[] for _ in range(level + 1)])
        )
        if self._entry_point is None:
            self._entry_point = node_id
            self._max_level = level
            return node_id

        current = self._entry_point
        # Greedy descent through layers above the new node's level.
        for layer in range(self._max_level, level, -1):
            current = self._greedy_closest(vector, current, layer)
        # Beam search + heuristic linking on the remaining layers.
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._nodes[node_id].neighbors[layer] = [item for _, item in selected]
            for _, neighbor in selected:
                self._link(neighbor, node_id, layer)
            if candidates:
                current = candidates[0][1]
        if level > self._max_level:
            self._max_level = level
            self._entry_point = node_id
        return node_id

    def _link(self, source: int, target: int, layer: int) -> None:
        """Add edge source->target at ``layer``, shrinking with the heuristic."""
        neighbor_list = self._nodes[source].neighbors[layer]
        if target in neighbor_list:
            return
        neighbor_list.append(target)
        max_degree = self._params.max_degree(layer)
        if len(neighbor_list) > max_degree:
            source_vector = self._buffer[source]
            dists = squared_distances_to_many(
                source_vector, self._buffer[neighbor_list]
            )
            candidates = sorted(zip(dists.tolist(), neighbor_list))
            selected = self._heuristic_prune(source_vector, candidates, max_degree)
            self._nodes[source].neighbors[layer] = [item for _, item in selected]

    # -- bulk construction ---------------------------------------------------

    def _build_bulk(self, vectors: np.ndarray) -> "HNSWIndex":
        """The vectorized construction path (``mode="bulk"``).

        Bit-identical to the sequential insert loop from the same RNG
        state: the level draws consume the identical uniform stream (one
        vectorized call), every distance the selection logic compares is
        produced by the same elementwise kernel, and adjacency rows
        preserve sequential neighbor order.  Only the bookkeeping
        changes: flat int64 arrays instead of list-of-lists, and one
        domination kernel per selected neighbor instead of one distance
        call per candidate.
        """
        if self._nodes:
            raise ParameterError(
                "bulk build requires an empty graph; use insert() to extend"
            )
        n = vectors.shape[0]
        if n == 0:
            return self
        # One vectorized draw is the identical stream to n scalar
        # uniform() calls.  The log itself must stay math.log: np.log's
        # SIMD kernel differs from the scalar libm by 1 ulp on a small
        # fraction of inputs, which would flip a level when -log(u)*ml
        # lands within that ulp of an integer and silently break the
        # bit-identity contract.  n scalar logs are noise next to the
        # graph construction itself.
        uniforms = self._rng.uniform(0.0, 1.0, size=n)
        ml = self._params.ml
        levels = np.fromiter(
            (int(-math.log(max(u, 1e-300)) * ml) for u in uniforms.tolist()),
            dtype=np.int64,
            count=n,
        )
        if self._buffer.shape[0] < n:
            self._buffer = np.empty((n, self._dim))
        self._buffer[:n] = vectors
        flat = _FlatAdjacency(self._params, levels)
        self._entry_point = 0
        self._max_level = int(levels[0])
        ef = max(self._params.ef_construction, 1)
        for node_id in range(1, n):
            vector = self._buffer[node_id]
            level = int(levels[node_id])
            current = self._entry_point
            for layer in range(self._max_level, level, -1):
                current = self._greedy_closest(
                    vector, current, layer, neighbors_of=flat.neighbors_of
                )
            for layer in range(min(level, self._max_level), -1, -1):
                candidates = self._search_layer(
                    vector, [current], ef, layer, neighbors_of=flat.neighbors_of
                )
                selected = self._select_neighbors(
                    vector,
                    candidates,
                    self._params.m,
                    layer,
                    neighbors_of=flat.neighbors_of,
                    prune=self._heuristic_prune_batched,
                )
                flat.replace(node_id, layer, [item for _, item in selected])
                for _, neighbor in selected:
                    self._bulk_link(flat, neighbor, node_id, layer)
                if candidates:
                    current = candidates[0][1]
            if level > self._max_level:
                self._max_level = level
                self._entry_point = node_id
        self._nodes = flat.to_nodes()
        return self

    def _bulk_link(
        self, flat: _FlatAdjacency, source: int, target: int, layer: int
    ) -> None:
        """Flat-array twin of :meth:`_link` (same shrink decisions)."""
        row_index = int(flat.rows[layer][source])
        count = int(flat.counts[layer][row_index])
        row = flat.adjacency[layer][row_index]
        if (row[:count] == target).any():
            return
        row[count] = target
        count += 1
        flat.counts[layer][row_index] = count
        max_degree = self._params.max_degree(layer)
        if count > max_degree:
            neighbor_list = row[:count].tolist()
            source_vector = self._buffer[source]
            dists = squared_distances_to_many(
                source_vector, self._buffer[neighbor_list]
            )
            candidates = sorted(zip(dists.tolist(), neighbor_list))
            selected = self._heuristic_prune_batched(
                source_vector, candidates, max_degree
            )
            flat.replace(source, layer, [item for _, item in selected])

    def _select_neighbors(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
        layer: int,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
        prune: "Callable[[np.ndarray, list[tuple[float, int]], int], list[tuple[float, int]]] | None" = None,
    ) -> list[tuple[float, int]]:
        """HNSW Algorithm 4: pick up to ``count`` diverse neighbors.

        ``neighbors_of`` / ``prune`` let the bulk build substitute its
        flat-array adjacency reader and batched prune kernel; the
        defaults are the sequential list-of-lists path.
        """
        if self._params.extend_candidates:
            seen = {item for _, item in candidates}
            extended = list(candidates)
            for _, item in candidates:
                if neighbors_of is not None:
                    extension = neighbors_of(item, layer)
                else:
                    extension = (
                        self._nodes[item].neighbors[layer]
                        if layer <= self._nodes[item].level
                        else []
                    )
                for neighbor in extension:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        dist = float(
                            squared_distances_to_many(
                                vector, self._buffer[neighbor][np.newaxis]
                            )[0]
                        )
                        extended.append((dist, neighbor))
            candidates = sorted(extended)
        if prune is not None:
            return prune(vector, candidates, count)
        return self._heuristic_prune(vector, candidates, count)

    def _heuristic_prune(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[tuple[float, int]]:
        """Keep candidates not dominated by an already-selected neighbor.

        A candidate ``c`` is dominated when some selected ``s`` satisfies
        ``dist(c, s) < dist(c, query_vector)`` — the core diversification
        rule that gives HNSW graphs their navigability.
        """
        selected: list[tuple[float, int]] = []
        pruned: list[tuple[float, int]] = []
        for dist, item in sorted(candidates):
            if len(selected) >= count:
                break
            item_vector = self._buffer[item]
            dominated = False
            if selected:
                selected_ids = [sid for _, sid in selected]
                to_selected = squared_distances_to_many(
                    item_vector, self._buffer[selected_ids]
                )
                dominated = bool(np.any(to_selected < dist))
            if dominated:
                pruned.append((dist, item))
            else:
                selected.append((dist, item))
        if self._params.keep_pruned:
            for dist, item in pruned:
                if len(selected) >= count:
                    break
                selected.append((dist, item))
        return selected

    def _heuristic_prune_batched(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[tuple[float, int]]:
        """Batched twin of :meth:`_heuristic_prune` — identical output.

        The sequential oracle answers "is candidate ``c`` dominated?"
        with one distance call per candidate (``c`` against the selected
        set so far).  This version flips the loop: each time a neighbor
        ``s`` is *selected*, one kernel call computes ``dist(s, ·)`` to
        every candidate at once and ORs ``dist(s, c) < dist(c, q)`` into
        a per-candidate domination flag.  The predicate evaluated per
        (candidate, selected) pair — and the floats it compares — are
        exactly the oracle's, so selections and prunes never diverge;
        only the kernel-call count drops from O(#candidates) to
        O(#selected).
        """
        ordered = sorted(candidates)
        if not ordered:
            return []
        cand_ids = [item for _, item in ordered]
        cand_dists = np.array([dist for dist, _ in ordered])
        cand_vectors = self._buffer[cand_ids]
        dominated = np.zeros(len(ordered), dtype=bool)
        selected: list[tuple[float, int]] = []
        pruned: list[tuple[float, int]] = []
        for position, (dist, item) in enumerate(ordered):
            if len(selected) >= count:
                break
            if dominated[position]:
                pruned.append((dist, item))
                continue
            selected.append((dist, item))
            to_selected = squared_distances_to_many(
                cand_vectors[position], cand_vectors
            )
            dominated |= to_selected < cand_dists
        if self._params.keep_pruned:
            for dist, item in pruned:
                if len(selected) >= count:
                    break
                selected.append((dist, item))
        return selected

    # -- search ----------------------------------------------------------------

    def _greedy_closest(
        self,
        query: np.ndarray,
        start: int,
        layer: int,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
    ) -> int:
        """Greedy walk to a local minimum of distance-to-query at ``layer``."""
        current = start
        current_dist = float(
            squared_distances_to_many(query, self._buffer[current][np.newaxis])[0]
        )
        improved = True
        while improved:
            improved = False
            if neighbors_of is not None:
                neighbor_ids = neighbors_of(current, layer)
            else:
                neighbor_ids = self._nodes[current].neighbors[layer]
            if not neighbor_ids:
                break
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbor_ids[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        stats: SearchStats | None = None,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
    ) -> list[tuple[float, int]]:
        """Beam search at one layer; returns up to ``ef`` (dist, id) ascending."""
        visited = set(entry_points)
        entry_dists = squared_distances_to_many(query, self._buffer[entry_points])
        if stats is not None:
            stats.distance_computations += len(entry_points)
        candidates = [(float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(candidates)  # min-heap by distance
        results = [(-float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(results)  # max-heap via negation
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            if stats is not None:
                stats.hops += 1
            adjacent = (
                self._nodes[node].neighbors[layer]
                if neighbors_of is None
                else neighbors_of(node, layer)
            )
            neighbor_ids = [n for n in adjacent if n not in visited]
            if not neighbor_ids:
                continue
            visited.update(neighbor_ids)
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            if stats is not None:
                stats.distance_computations += len(neighbor_ids)
            bound = -results[0][0] if len(results) >= ef else math.inf
            for neighbor_dist, neighbor in zip(dists.tolist(), neighbor_ids):
                if neighbor_dist < bound or len(results) < ef:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    bound = -results[0][0] if len(results) >= ef else math.inf
        ordered = sorted((-negated, item) for negated, item in results)
        return ordered

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k-ANN search: returns ``(ids, squared_distances)`` nearest-first.

        Parameters
        ----------
        query:
            Query vector (same space as the indexed vectors — DCPE
            ciphertexts in the PP-ANNS scheme).
        k:
            Number of neighbors to return.
        ef_search:
            Beam width at layer 0; defaults to ``max(k, 2m)``.  Larger
            values trade throughput for recall (the x-axis sweeps in the
            paper's figures).
        stats:
            Optional accumulator for instrumentation.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, query.shape[-1], what="query")
        if self._entry_point is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.m)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        current = self._entry_point
        for layer in range(self._max_level, 0, -1):
            current = self._greedy_closest(query, current, layer)
        found = self._search_layer(query, [current], ef, 0, stats=stats)
        live = [(dist, item) for dist, item in found if item not in self._deleted]
        top = live[:k]
        ids = np.array([item for _, item in top], dtype=np.int64)
        dists = np.array([dist for dist, _ in top])
        return ids, dists

    # -- maintenance -------------------------------------------------------------

    def mark_deleted(self, node: int) -> None:
        """Mark ``node`` deleted so searches skip it (edges remain)."""
        if not 0 <= node < len(self._nodes):
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)
        if node == self._entry_point:
            self._reassign_entry_point()

    def in_neighbors(self, node: int, layer: int = 0) -> list[int]:
        """Ids of live nodes with an edge *into* ``node`` at ``layer``."""
        sources = []
        for candidate, record in enumerate(self._nodes):
            if candidate in self._deleted or candidate == node:
                continue
            if layer <= record.level and node in record.neighbors[layer]:
                sources.append(candidate)
        return sources

    def remove_edges_to(self, node: int) -> None:
        """Drop every edge pointing at ``node`` (deletion, Section V-D)."""
        for record in self._nodes:
            for layer_neighbors in record.neighbors:
                if node in layer_neighbors:
                    layer_neighbors.remove(node)

    def repair_node(self, node: int) -> None:
        """Re-link ``node`` by re-running neighbor selection on every layer.

        Used after a deletion disturbed this node's out-neighborhood
        (Section V-D: re-insert each in-neighbor of the deleted vector).
        """
        vector = self._buffer[node]
        entry = self._entry_point
        if entry is None or entry == node:
            return
        current = entry
        node_level = self._nodes[node].level
        for layer in range(self._max_level, node_level, -1):
            current = self._greedy_closest(vector, current, layer)
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(node_level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            candidates = [
                (dist, item)
                for dist, item in candidates
                if item != node and item not in self._deleted
            ]
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._nodes[node].neighbors[layer] = [item for _, item in selected]
            for _, neighbor in selected:
                self._link(neighbor, node, layer)
            if candidates:
                current = candidates[0][1]

    def _reassign_entry_point(self) -> None:
        """Pick a new entry point after the old one was deleted."""
        best: int | None = None
        best_level = -1
        for candidate, record in enumerate(self._nodes):
            if candidate in self._deleted:
                continue
            if record.level > best_level:
                best = candidate
                best_level = record.level
        self._entry_point = best
        self._max_level = best_level

    # -- introspection -------------------------------------------------------------

    def deleted_ids(self) -> np.ndarray:
        """Sorted tombstoned ids as int64 (see :func:`sorted_id_array`)."""
        return sorted_id_array(self._deleted)

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(levels, edges)`` export for persistence.

        ``levels`` is ``(n,)`` int64; ``edges`` is ``(e, 3)`` int64 rows
        of ``(node, level, neighbor)`` ordered by node, then level, then
        neighbor-list position — the order ``docs/FORMATS.md`` specifies.
        Assembled from whole-array primitives (``fromiter`` over chained
        lists + ``repeat``) instead of a per-edge Python loop.
        """
        count = len(self._nodes)
        levels = np.fromiter(
            (node.level for node in self._nodes), dtype=np.int64, count=count
        )
        list_nodes: list[int] = []
        list_levels: list[int] = []
        list_lengths: list[int] = []
        chunks: list[list[int]] = []
        for node, record in enumerate(self._nodes):
            for level, adjacent in enumerate(record.neighbors):
                if adjacent:
                    list_nodes.append(node)
                    list_levels.append(level)
                    list_lengths.append(len(adjacent))
                    chunks.append(adjacent)
        if not chunks:
            return levels, np.empty((0, 3), dtype=np.int64)
        lengths = np.array(list_lengths, dtype=np.int64)
        targets = np.fromiter(
            itertools.chain.from_iterable(chunks),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        sources = np.repeat(np.array(list_nodes, dtype=np.int64), lengths)
        layers = np.repeat(np.array(list_levels, dtype=np.int64), lengths)
        return levels, np.column_stack((sources, layers, targets))

    def degree_histogram(self, layer: int = 0) -> dict[int, int]:
        """Histogram of out-degrees at ``layer`` over live nodes."""
        histogram: dict[int, int] = {}
        for node, record in enumerate(self._nodes):
            if node in self._deleted or layer > record.level:
                continue
            degree = len(record.neighbors[layer])
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def edge_count(self, layer: int = 0) -> int:
        """Total directed edges at ``layer`` over live nodes."""
        return sum(
            len(record.neighbors[layer])
            for node, record in enumerate(self._nodes)
            if node not in self._deleted and layer <= record.level
        )
