"""Hierarchical Navigable Small World graphs, from scratch.

Implements Malkov & Yashunin (TPAMI 2020): a multi-layer proximity graph
where layer assignment is geometric (``floor(-ln U * mL)``), upper layers
form a coarse navigation skeleton and layer 0 contains every vector.
Insertion greedily descends from the entry point, then runs an
``ef_construction``-wide beam search per layer and links to ``M`` diverse
neighbors chosen by the *heuristic* selection rule (Algorithm 4 of the
HNSW paper), which prunes candidates dominated by an already-selected
neighbor.

In the PP-ANNS scheme the vectors handed to this index are **DCPE
ciphertexts**, never plaintexts (Section V-A): the graph's edges then only
reflect approximate neighbor relations, which is part of the privacy
argument.  The index itself is metric-agnostic — it just sees vectors.

Search (``search``) is the standard layered beam search returning the
``ef_search``-quality top-k with per-query :class:`SearchStats` so the
evaluation harness can report distance-computation counts and hops.

Two build modes exist (:data:`BUILD_MODES`).  ``sequential`` is the
seed's one-row-at-a-time insert loop and remains the oracle reference.
``bulk`` builds the *same graph bit for bit* from the same seed — all
levels are drawn up front in one vectorized RNG call (the identical
uniform stream), adjacency lives in flat preallocated int64 arrays
instead of per-node list-of-lists while the build runs, and the
neighbor-selection heuristic answers its domination tests from batched
distance kernels (one kernel call per *selected* neighbor instead of
one per *candidate*) — which cuts the interpreter dispatch the
sequential loop pays per insertion.

Two search modes exist as well.  :meth:`HNSWIndex.search` walks the
per-node ``list[list[int]]`` adjacency with a Python ``set`` for
visited bookkeeping — the oracle reference.
:meth:`HNSWIndex.search_vectorized` runs the identical traversal over a
**flat CSR snapshot** (:class:`_SearchMode`) compiled lazily per graph
generation: per-layer int64 ``indptr``/``indices`` arrays, an
epoch-stamped int32 ``visited`` scratch (reset by bumping the epoch,
never refilled), and the same ``squared_distances_to_many`` kernel on
CSR-gathered neighbor blocks.  Because the gathered rows, their order,
and every heap decision match the oracle's, the vectorized path is
bit-identical — ids, dists, ``distance_computations`` and ``hops`` —
while skipping the per-expansion list/set churn.  Any adjacency
mutation bumps ``_adjacency_version``, which invalidates the snapshot;
the next vectorized search recompiles it.
"""

from __future__ import annotations

import heapq
import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import squared_distances_to_many

__all__ = [
    "BUILD_MODES",
    "HNSWParams",
    "HNSWIndex",
    "SearchStats",
    "sorted_id_array",
]

#: Registered bulk-build modes: the seed's ``sequential`` insert loop
#: (the oracle reference) and the ``bulk`` vectorized path, which
#: produces a bit-identical graph from the same seed.
BUILD_MODES = ("sequential", "bulk")


def sorted_id_array(ids: "set[int]") -> np.ndarray:
    """A tombstone set as a sorted int64 array — one build, no id scan.

    Shared by every substrate's ``deleted_ids`` so the persisted
    ``*_deleted`` payloads cannot drift apart in dtype or empty-case
    handling.
    """
    if not ids:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.fromiter(ids, dtype=np.int64, count=len(ids)))


@dataclass(frozen=True)
class HNSWParams:
    """Construction parameters of an HNSW graph.

    Attributes
    ----------
    m:
        Out-degree target for layers >= 1; layer 0 allows ``2*m``.
        The paper's experiments use ``m=40`` on million-scale data; our
        scaled-down defaults follow the common ``m=16``.
    ef_construction:
        Beam width during insertion (paper: 600 at million scale).
    level_multiplier:
        ``mL`` of the geometric level distribution; defaults to
        ``1/ln(m)`` as recommended.
    extend_candidates:
        Whether the selection heuristic also examines neighbors of
        candidates (HNSW paper Algorithm 4 option).
    keep_pruned:
        Whether to backfill pruned candidates up to ``M`` links.
    """

    m: int = 16
    ef_construction: int = 200
    level_multiplier: float | None = None
    extend_candidates: bool = False
    keep_pruned: bool = True

    def __post_init__(self) -> None:
        if self.m < 2:
            raise ParameterError(f"m must be >= 2, got {self.m}")
        if self.ef_construction < 1:
            raise ParameterError(
                f"ef_construction must be >= 1, got {self.ef_construction}"
            )

    @property
    def ml(self) -> float:
        """Effective level multiplier."""
        if self.level_multiplier is not None:
            return self.level_multiplier
        return 1.0 / math.log(self.m)

    def max_degree(self, level: int) -> int:
        """Maximum out-degree at ``level`` (``2m`` at level 0, ``m`` above)."""
        return 2 * self.m if level == 0 else self.m


@dataclass
class SearchStats:
    """Per-query instrumentation of a graph search.

    Attributes
    ----------
    distance_computations:
        Number of query-to-vector distance evaluations.
    hops:
        Number of node expansions across all layers.
    kernel_seconds:
        Wall seconds spent inside a compiled filter-engine kernel
        (CSR/batched search paths); stays 0.0 on the oracle ``heap``
        engine, mirroring ``RefineOutcome.kernel_seconds``.
    """

    distance_computations: int = 0
    hops: int = 0
    kernel_seconds: float = 0.0

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's stats into this one."""
        self.distance_computations += other.distance_computations
        self.hops += other.hops
        self.kernel_seconds += other.kernel_seconds


@dataclass
class _Node:
    """Internal per-vector record: its top level and per-level adjacency."""

    level: int
    neighbors: list[list[int]] = field(default_factory=list)


class _FlatAdjacency:
    """Construction-time adjacency in flat preallocated int64 arrays.

    The bulk build keeps one ``(n_layer, max_degree(layer) + 1)`` array
    and one count vector per layer instead of per-node Python lists:
    neighbor reads are slices, appends are single-cell writes, and the
    ``+ 1`` column is the transient overflow slot ``_bulk_link`` fills
    before pruning back down to the degree cap.  Each layer's rows
    cover only the nodes whose level reaches that layer (the geometric
    distribution thins ~1/m per layer), addressed through a per-layer
    node -> row map — without the remap, every upper layer would
    allocate full-``n`` rows for nodes that cannot exist there.
    Neighbor order within a row is exactly the order the sequential
    lists would hold, which is what keeps the bulk build bit-identical.
    """

    __slots__ = ("levels", "adjacency", "counts", "rows")

    def __init__(self, params: HNSWParams, levels: np.ndarray) -> None:
        n = int(levels.shape[0])
        top = int(levels.max()) if n else -1
        self.levels = levels
        self.adjacency: list[np.ndarray] = []
        self.counts: list[np.ndarray] = []
        self.rows: list[np.ndarray] = []
        for layer in range(top + 1):
            eligible = np.nonzero(levels >= layer)[0]
            row_of = np.full(n, -1, dtype=np.int64)
            row_of[eligible] = np.arange(eligible.shape[0], dtype=np.int64)
            self.rows.append(row_of)
            self.adjacency.append(
                np.full(
                    (eligible.shape[0], params.max_degree(layer) + 1),
                    -1,
                    dtype=np.int64,
                )
            )
            self.counts.append(np.zeros(eligible.shape[0], dtype=np.int64))

    def neighbors_of(self, node: int, layer: int) -> list[int]:
        """Neighbor ids of ``node`` at ``layer`` as plain ints, in order.

        Empty for a node whose level does not reach ``layer`` — the same
        answer the sequential path's level check gives.
        """
        row = self.rows[layer][node]
        if row < 0:
            return []
        return self.adjacency[layer][row, : self.counts[layer][row]].tolist()

    def replace(self, node: int, layer: int, neighbor_ids: list[int]) -> None:
        """Overwrite ``node``'s neighbor row at ``layer``."""
        row = self.rows[layer][node]
        self.adjacency[layer][row, : len(neighbor_ids)] = neighbor_ids
        self.counts[layer][row] = len(neighbor_ids)

    def to_nodes(self) -> list[_Node]:
        """Convert to the per-node list-of-lists the query path uses."""
        return [
            _Node(
                level=int(level),
                neighbors=[
                    self.neighbors_of(node, layer) for layer in range(int(level) + 1)
                ],
            )
            for node, level in enumerate(self.levels)
        ]


class _SearchMode:
    """A flat CSR snapshot of the adjacency for the vectorized search path.

    One ``(indptr, indices)`` int64 pair per layer: ``indices[indptr[v] :
    indptr[v + 1]]`` is node ``v``'s neighbor row at that layer, in
    exactly the order the list-of-lists holds — which is what keeps the
    vectorized traversal bit-identical to the oracle.  ``version`` pins
    the snapshot to the ``_adjacency_version`` it was compiled from so a
    stale snapshot can never answer for a mutated graph.

    The epoch-stamped ``visited`` scratch lives here too, one per thread
    (searches on a shared index run concurrently under the thread
    executor): marking a node visited writes the current epoch into an
    int32 array, and "clearing" it for the next search is a single epoch
    bump instead of an O(n) refill.  The arrays may be read-only
    shared-memory views (the process data plane publishes them alongside
    ``C_SAP``); search only ever reads them.
    """

    __slots__ = ("version", "indptr", "indices", "_scratch")

    def __init__(
        self,
        version: int,
        indptr: "list[np.ndarray]",
        indices: "list[np.ndarray]",
    ) -> None:
        self.version = version
        self.indptr = indptr
        self.indices = indices
        self._scratch = threading.local()

    def next_epoch(self, count: int) -> tuple[np.ndarray, int]:
        """This thread's ``(visited, epoch)`` scratch, advanced one epoch."""
        local = self._scratch
        visited = getattr(local, "visited", None)
        if visited is None or visited.shape[0] < count:
            visited = np.zeros(max(count, 1), dtype=np.int32)
            local.visited = visited
            local.epoch = 0
        epoch = local.epoch + 1
        if epoch >= np.iinfo(np.int32).max:
            visited.fill(0)
            epoch = 1
        local.epoch = epoch
        return visited, epoch

    def next_epoch_batch(self, count: int, rows: int) -> tuple[np.ndarray, int]:
        """A ``(rows, count)`` visited scratch for lockstep batch search.

        Same epoch trick as :meth:`next_epoch`, one row per in-flight
        query, reused across micro-batches on this thread.
        """
        local = self._scratch
        visited = getattr(local, "batch_visited", None)
        if (
            visited is None
            or visited.shape[0] < rows
            or visited.shape[1] < count
        ):
            visited = np.zeros((max(rows, 1), max(count, 1)), dtype=np.int32)
            local.batch_visited = visited
            local.batch_epoch = 0
        epoch = local.batch_epoch + 1
        if epoch >= np.iinfo(np.int32).max:
            visited.fill(0)
            epoch = 1
        local.batch_epoch = epoch
        return visited, epoch


def compile_search_mode(
    version: int,
    count: int,
    layers: "list[list[list[int]] | list[np.ndarray]]",
) -> _SearchMode:
    """Compile per-layer neighbor rows into a :class:`_SearchMode`.

    ``layers[layer][node]`` is node ``node``'s neighbor sequence at
    ``layer`` (empty when the node does not reach the layer).  Shared by
    the HNSW and NSG substrates so the CSR layout cannot drift between
    them.
    """
    indptr_layers: "list[np.ndarray]" = []
    indices_layers: "list[np.ndarray]" = []
    for rows in layers:
        counts = np.zeros(count + 1, dtype=np.int64)
        for node, adjacent in enumerate(rows):
            counts[node + 1] = len(adjacent)
        indptr = np.cumsum(counts, dtype=np.int64)
        indices = np.fromiter(
            itertools.chain.from_iterable(rows),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        indptr_layers.append(indptr)
        indices_layers.append(indices)
    return _SearchMode(version, indptr_layers, indices_layers)


def lockstep_beam_search(
    buffer: np.ndarray,
    node_count: int,
    queries: np.ndarray,
    entry_points: "list[int]",
    ef: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    mode: _SearchMode,
    stats_list: "list[SearchStats | None]",
) -> "list[list[tuple[float, int]]]":
    """All queries' layer-0 beams, advanced in lockstep rounds.

    Bit-identical per query to the single-query flat beam
    (``HNSWIndex._search_layer_flat`` — one entry point each): every
    query replays its own pop / termination / accept sequence exactly.
    Each round, every still-active query pops one candidate, and the
    round's per-row work is fused across the batch — one 2D gather and
    scatter against the epoch-stamped visited matrix, and one
    subtract + einsum over the concatenated neighbor rows.  Per-row
    reductions are independent of batch composition, so the fused block
    yields the same distances the per-query calls would — only the
    numpy dispatch cost is amortized across the micro-batch.

    The one pacing difference from the single-query loop: a popped node
    whose neighbors are all visited makes the oracle pop again
    immediately, while here the query just sits out the rest of the
    round.  An empty expansion mutates nothing but the hop counter —
    which is charged at pop time either way — so the per-query state
    sequence is unchanged.  Queries terminate independently and drop
    out of the lockstep; shared by the HNSW and NSG substrates.
    """
    num = queries.shape[0]
    visited, epoch = mode.next_epoch_batch(node_count, num)
    push = heapq.heappush
    pop = heapq.heappop
    entry_ids = np.asarray(entry_points, dtype=np.int64)
    entry_diff = buffer.take(entry_ids, axis=0) - queries
    entry_dists = np.einsum("ij,ij->i", entry_diff, entry_diff)
    candidates: "list[list[tuple[float, int]]]" = []
    results: "list[list[tuple[float, int]]]" = []
    for row in range(num):
        stats = stats_list[row]
        if stats is not None:
            stats.distance_computations += 1
        dist = float(entry_dists[row])
        candidates.append([(dist, entry_points[row])])
        results.append([(-dist, entry_points[row])])
        visited[row, entry_points[row]] = epoch
    active = list(range(num))
    while active:
        survivors: "list[int]" = []
        expanded: "list[int]" = []
        blocks: "list[np.ndarray]" = []
        for row in active:
            cands = candidates[row]
            res = results[row]
            dist, node = pop(cands)
            if len(res) >= ef and dist > -res[0][0]:
                continue  # terminated: never requeued
            stats = stats_list[row]
            if stats is not None:
                stats.hops += 1
            survivors.append(row)
            adjacent = indices[indptr[node] : indptr[node + 1]]
            if adjacent.shape[0]:
                expanded.append(row)
                blocks.append(adjacent)
        if expanded:
            counts = [block.shape[0] for block in blocks]
            all_adjacent = np.concatenate(blocks)
            rep = np.repeat(np.asarray(expanded, dtype=np.intp), counts)
            fresh_mask = visited[rep, all_adjacent] != epoch
            all_fresh = all_adjacent[fresh_mask]
            rep_fresh = rep[fresh_mask]
            visited[rep_fresh, all_fresh] = epoch
            diff = buffer.take(all_fresh, axis=0) - queries.take(rep_fresh, axis=0)
            all_dists = np.einsum("ij,ij->i", diff, diff)
            starts = np.cumsum([0] + counts[:-1])
            widths = np.add.reduceat(fresh_mask, starts, dtype=np.intp)
            # One bulk conversion per round; the accept loops slice the
            # Python lists (cheaper than per-row array views + tolist).
            dist_values = all_dists.tolist()
            fresh_values = all_fresh.tolist()
            offset = 0
            for row, width in zip(expanded, widths.tolist()):
                if width == 0:
                    continue
                end = offset + width
                dists = dist_values[offset:end]
                fresh = fresh_values[offset:end]
                offset = end
                stats = stats_list[row]
                if stats is not None:
                    stats.distance_computations += width
                cands = candidates[row]
                res = results[row]
                if len(res) >= ef:
                    # Full beam: the bound only tightens, so the
                    # rejected tail never touches the heaps (same
                    # accepted multiset as the oracle loop).
                    bound = -res[0][0]
                    for neighbor_dist, neighbor in zip(dists, fresh):
                        if neighbor_dist < bound:
                            push(cands, (neighbor_dist, neighbor))
                            push(res, (-neighbor_dist, neighbor))
                            pop(res)
                            bound = -res[0][0]
                else:
                    bound = math.inf
                    for neighbor_dist, neighbor in zip(dists, fresh):
                        if neighbor_dist < bound or len(res) < ef:
                            push(cands, (neighbor_dist, neighbor))
                            push(res, (-neighbor_dist, neighbor))
                            if len(res) > ef:
                                pop(res)
                            bound = -res[0][0] if len(res) >= ef else math.inf
        active = [row for row in survivors if candidates[row]]
    return [sorted((-negated, item) for negated, item in res) for res in results]


class HNSWIndex:
    """An HNSW graph over a set of vectors.

    Parameters
    ----------
    dim:
        Vector dimensionality.
    params:
        Construction parameters.
    rng:
        Randomness for level assignment.

    Notes
    -----
    Vectors are stored in insertion order and addressed by integer ids
    ``0..n-1``; the PP-ANNS scheme uses the same ids for the DCE ciphertext
    array, so the refine phase can cross-reference candidates directly.
    """

    def __init__(
        self,
        dim: int,
        params: HNSWParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dim <= 0:
            raise ParameterError(f"dimension must be positive, got {dim}")
        self._dim = dim
        self._params = params if params is not None else HNSWParams()
        self._rng = rng if rng is not None else np.random.default_rng()
        # Amortized-doubling storage so bulk builds avoid O(n^2) copying.
        self._buffer = np.empty((16, dim))
        self._nodes: list[_Node] = []
        self._entry_point: int | None = None
        self._max_level = -1
        self._deleted: set[int] = set()
        # Monotone counter bumped by every adjacency mutation; the CSR
        # search mode and the reverse-adjacency map key off it.
        self._adjacency_version = 0
        self._search_mode: "_SearchMode | None" = None
        # Lazily built target -> {(source, layer)} reverse-adjacency map
        # (None until first needed), maintained incrementally by the
        # neighbor-list write helpers.
        self._reverse: "dict[int, set[tuple[int, int]]] | None" = None

    # -- properties ---------------------------------------------------------

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return self._dim

    @property
    def params(self) -> HNSWParams:
        """Construction parameters."""
        return self._params

    @property
    def size(self) -> int:
        """Number of live (non-deleted) vectors."""
        return len(self._nodes) - len(self._deleted)

    @property
    def max_level(self) -> int:
        """Highest layer currently in the graph (-1 when empty)."""
        return self._max_level

    @property
    def entry_point(self) -> int | None:
        """Id of the current global entry point."""
        return self._entry_point

    @property
    def vectors(self) -> np.ndarray:
        """The stored vectors, including any deleted slots."""
        return self._buffer[: len(self._nodes)]

    def neighbors(self, node: int, level: int = 0) -> list[int]:
        """Out-neighbors of ``node`` at ``level`` (copy)."""
        record = self._nodes[node]
        if level > record.level:
            return []
        return list(record.neighbors[level])

    def node_level(self, node: int) -> int:
        """Top layer of ``node``."""
        return self._nodes[node].level

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been marked deleted."""
        return node in self._deleted

    # -- construction ---------------------------------------------------------

    def _draw_level(self) -> int:
        uniform = self._rng.uniform(0.0, 1.0)
        # Guard against log(0).
        uniform = max(uniform, 1e-300)
        return int(-math.log(uniform) * self._params.ml)

    def build(self, vectors: np.ndarray, mode: str = "sequential") -> "HNSWIndex":
        """Build the graph over ``vectors``; returns ``self`` for chaining.

        ``mode`` selects the construction path (:data:`BUILD_MODES`):
        ``sequential`` inserts each row in order (the seed loop, kept as
        the oracle reference), ``bulk`` runs the vectorized construction
        path — bit-identical output from the same RNG state, but with
        levels drawn up front, flat int64 adjacency arrays during the
        build, and batched neighbor-selection kernels.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="build input")
        if mode not in BUILD_MODES:
            raise ParameterError(
                f"unknown build mode {mode!r}; available: {', '.join(BUILD_MODES)}"
            )
        if mode == "bulk":
            return self._build_bulk(vectors)
        for row in vectors:
            self.insert(row)
        return self

    def insert(self, vector: np.ndarray, level: int | None = None) -> int:
        """Insert one vector, returning its id.

        ``level`` forces the node's top level instead of drawing it from
        the RNG — the hook journal replay (:mod:`repro.core.journal`)
        uses to re-apply a recorded insertion deterministically.  With
        the level fixed, insertion is a pure function of the current
        graph state, so replaying the recorded level reproduces the
        exact adjacency the original insert built.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, vector.shape[-1])
        node_id = len(self._nodes)
        if level is None:
            level = self._draw_level()
        elif level < 0:
            raise ParameterError(f"level must be >= 0, got {level}")
        if node_id >= self._buffer.shape[0]:
            grown = np.empty((2 * self._buffer.shape[0], self._dim))
            grown[:node_id] = self._buffer[:node_id]
            self._buffer = grown
        self._buffer[node_id] = vector
        self._nodes.append(
            _Node(level=level, neighbors=[[] for _ in range(level + 1)])
        )
        self._adjacency_version += 1  # node count changes the CSR shape
        if self._entry_point is None:
            self._entry_point = node_id
            self._max_level = level
            return node_id

        current = self._entry_point
        # Greedy descent through layers above the new node's level.
        for layer in range(self._max_level, level, -1):
            current = self._greedy_closest(vector, current, layer)
        # Beam search + heuristic linking on the remaining layers.
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._set_neighbor_list(node_id, layer, [item for _, item in selected])
            for _, neighbor in selected:
                self._link(neighbor, node_id, layer)
            if candidates:
                current = candidates[0][1]
        if level > self._max_level:
            self._max_level = level
            self._entry_point = node_id
        return node_id

    def _link(self, source: int, target: int, layer: int) -> None:
        """Add edge source->target at ``layer``, shrinking with the heuristic."""
        neighbor_list = self._nodes[source].neighbors[layer]
        if target in neighbor_list:
            return
        neighbor_list.append(target)
        self._adjacency_version += 1
        if self._reverse is not None:
            self._reverse.setdefault(target, set()).add((source, layer))
        max_degree = self._params.max_degree(layer)
        if len(neighbor_list) > max_degree:
            source_vector = self._buffer[source]
            dists = squared_distances_to_many(
                source_vector, self._buffer[neighbor_list]
            )
            candidates = sorted(zip(dists.tolist(), neighbor_list))
            selected = self._heuristic_prune(source_vector, candidates, max_degree)
            self._set_neighbor_list(source, layer, [item for _, item in selected])

    def _set_neighbor_list(
        self, source: int, layer: int, neighbor_ids: list[int]
    ) -> None:
        """Overwrite ``source``'s neighbor row at ``layer``.

        The single choke point for whole-row rewrites: it keeps the
        reverse-adjacency map consistent (when built) and bumps the
        adjacency version so the CSR search mode recompiles.
        """
        record = self._nodes[source]
        if self._reverse is not None:
            old = set(record.neighbors[layer])
            new = set(neighbor_ids)
            for target in old - new:
                entry = self._reverse.get(target)
                if entry is not None:
                    entry.discard((source, layer))
            for target in new - old:
                self._reverse.setdefault(target, set()).add((source, layer))
        record.neighbors[layer] = neighbor_ids
        self._adjacency_version += 1

    # -- bulk construction ---------------------------------------------------

    def _build_bulk(self, vectors: np.ndarray) -> "HNSWIndex":
        """The vectorized construction path (``mode="bulk"``).

        Bit-identical to the sequential insert loop from the same RNG
        state: the level draws consume the identical uniform stream (one
        vectorized call), every distance the selection logic compares is
        produced by the same elementwise kernel, and adjacency rows
        preserve sequential neighbor order.  Only the bookkeeping
        changes: flat int64 arrays instead of list-of-lists, and one
        domination kernel per selected neighbor instead of one distance
        call per candidate.
        """
        if self._nodes:
            raise ParameterError(
                "bulk build requires an empty graph; use insert() to extend"
            )
        n = vectors.shape[0]
        if n == 0:
            return self
        # One vectorized draw is the identical stream to n scalar
        # uniform() calls.  The log itself must stay math.log: np.log's
        # SIMD kernel differs from the scalar libm by 1 ulp on a small
        # fraction of inputs, which would flip a level when -log(u)*ml
        # lands within that ulp of an integer and silently break the
        # bit-identity contract.  n scalar logs are noise next to the
        # graph construction itself.
        uniforms = self._rng.uniform(0.0, 1.0, size=n)
        ml = self._params.ml
        levels = np.fromiter(
            (int(-math.log(max(u, 1e-300)) * ml) for u in uniforms.tolist()),
            dtype=np.int64,
            count=n,
        )
        if self._buffer.shape[0] < n:
            self._buffer = np.empty((n, self._dim))
        self._buffer[:n] = vectors
        flat = _FlatAdjacency(self._params, levels)
        self._entry_point = 0
        self._max_level = int(levels[0])
        ef = max(self._params.ef_construction, 1)
        for node_id in range(1, n):
            vector = self._buffer[node_id]
            level = int(levels[node_id])
            current = self._entry_point
            for layer in range(self._max_level, level, -1):
                current = self._greedy_closest(
                    vector, current, layer, neighbors_of=flat.neighbors_of
                )
            for layer in range(min(level, self._max_level), -1, -1):
                candidates = self._search_layer(
                    vector, [current], ef, layer, neighbors_of=flat.neighbors_of
                )
                selected = self._select_neighbors(
                    vector,
                    candidates,
                    self._params.m,
                    layer,
                    neighbors_of=flat.neighbors_of,
                    prune=self._heuristic_prune_batched,
                )
                flat.replace(node_id, layer, [item for _, item in selected])
                for _, neighbor in selected:
                    self._bulk_link(flat, neighbor, node_id, layer)
                if candidates:
                    current = candidates[0][1]
            if level > self._max_level:
                self._max_level = level
                self._entry_point = node_id
        self._nodes = flat.to_nodes()
        self._adjacency_version += 1
        self._reverse = None
        return self

    def _bulk_link(
        self, flat: _FlatAdjacency, source: int, target: int, layer: int
    ) -> None:
        """Flat-array twin of :meth:`_link` (same shrink decisions)."""
        row_index = int(flat.rows[layer][source])
        count = int(flat.counts[layer][row_index])
        row = flat.adjacency[layer][row_index]
        if (row[:count] == target).any():
            return
        row[count] = target
        count += 1
        flat.counts[layer][row_index] = count
        max_degree = self._params.max_degree(layer)
        if count > max_degree:
            neighbor_list = row[:count].tolist()
            source_vector = self._buffer[source]
            dists = squared_distances_to_many(
                source_vector, self._buffer[neighbor_list]
            )
            candidates = sorted(zip(dists.tolist(), neighbor_list))
            selected = self._heuristic_prune_batched(
                source_vector, candidates, max_degree
            )
            flat.replace(source, layer, [item for _, item in selected])

    def _select_neighbors(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
        layer: int,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
        prune: "Callable[[np.ndarray, list[tuple[float, int]], int], list[tuple[float, int]]] | None" = None,
    ) -> list[tuple[float, int]]:
        """HNSW Algorithm 4: pick up to ``count`` diverse neighbors.

        ``neighbors_of`` / ``prune`` let the bulk build substitute its
        flat-array adjacency reader and batched prune kernel; the
        defaults are the sequential list-of-lists path.
        """
        if self._params.extend_candidates:
            seen = {item for _, item in candidates}
            extended = list(candidates)
            for _, item in candidates:
                if neighbors_of is not None:
                    extension = neighbors_of(item, layer)
                else:
                    extension = (
                        self._nodes[item].neighbors[layer]
                        if layer <= self._nodes[item].level
                        else []
                    )
                for neighbor in extension:
                    if neighbor not in seen:
                        seen.add(neighbor)
                        dist = float(
                            squared_distances_to_many(
                                vector, self._buffer[neighbor][np.newaxis]
                            )[0]
                        )
                        extended.append((dist, neighbor))
            candidates = sorted(extended)
        if prune is not None:
            return prune(vector, candidates, count)
        return self._heuristic_prune(vector, candidates, count)

    def _heuristic_prune(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[tuple[float, int]]:
        """Keep candidates not dominated by an already-selected neighbor.

        A candidate ``c`` is dominated when some selected ``s`` satisfies
        ``dist(c, s) < dist(c, query_vector)`` — the core diversification
        rule that gives HNSW graphs their navigability.
        """
        selected: list[tuple[float, int]] = []
        pruned: list[tuple[float, int]] = []
        for dist, item in sorted(candidates):
            if len(selected) >= count:
                break
            item_vector = self._buffer[item]
            dominated = False
            if selected:
                selected_ids = [sid for _, sid in selected]
                to_selected = squared_distances_to_many(
                    item_vector, self._buffer[selected_ids]
                )
                dominated = bool(np.any(to_selected < dist))
            if dominated:
                pruned.append((dist, item))
            else:
                selected.append((dist, item))
        if self._params.keep_pruned:
            for dist, item in pruned:
                if len(selected) >= count:
                    break
                selected.append((dist, item))
        return selected

    def _heuristic_prune_batched(
        self,
        vector: np.ndarray,
        candidates: list[tuple[float, int]],
        count: int,
    ) -> list[tuple[float, int]]:
        """Batched twin of :meth:`_heuristic_prune` — identical output.

        The sequential oracle answers "is candidate ``c`` dominated?"
        with one distance call per candidate (``c`` against the selected
        set so far).  This version flips the loop: each time a neighbor
        ``s`` is *selected*, one kernel call computes ``dist(s, ·)`` to
        every candidate at once and ORs ``dist(s, c) < dist(c, q)`` into
        a per-candidate domination flag.  The predicate evaluated per
        (candidate, selected) pair — and the floats it compares — are
        exactly the oracle's, so selections and prunes never diverge;
        only the kernel-call count drops from O(#candidates) to
        O(#selected).
        """
        ordered = sorted(candidates)
        if not ordered:
            return []
        cand_ids = [item for _, item in ordered]
        cand_dists = np.array([dist for dist, _ in ordered])
        cand_vectors = self._buffer[cand_ids]
        dominated = np.zeros(len(ordered), dtype=bool)
        selected: list[tuple[float, int]] = []
        pruned: list[tuple[float, int]] = []
        for position, (dist, item) in enumerate(ordered):
            if len(selected) >= count:
                break
            if dominated[position]:
                pruned.append((dist, item))
                continue
            selected.append((dist, item))
            to_selected = squared_distances_to_many(
                cand_vectors[position], cand_vectors
            )
            dominated |= to_selected < cand_dists
        if self._params.keep_pruned:
            for dist, item in pruned:
                if len(selected) >= count:
                    break
                selected.append((dist, item))
        return selected

    # -- flat search mode (CSR) -------------------------------------------------

    def search_mode(self) -> _SearchMode:
        """The CSR snapshot of the current adjacency, compiled lazily.

        Cached per graph generation: any adjacency mutation bumps
        ``_adjacency_version`` and the next call recompiles.  External
        state surgery that bypasses the mutation helpers (the
        persistence ``from_state`` hook writes ``_nodes`` directly) is
        safe because it happens on a fresh graph, before the first
        search compiles anything.
        """
        mode = self._search_mode
        if mode is not None and mode.version == self._adjacency_version:
            return mode
        count = len(self._nodes)
        layers = [
            [
                record.neighbors[layer] if layer <= record.level else ()
                for record in self._nodes
            ]
            for layer in range(self._max_level + 1)
        ]
        mode = compile_search_mode(self._adjacency_version, count, layers)
        self._search_mode = mode
        return mode

    def adopt_search_mode(
        self, layers: "list[tuple[np.ndarray, np.ndarray]]"
    ) -> None:
        """Install precompiled per-layer ``(indptr, indices)`` CSR arrays.

        The process data plane publishes the parent's compiled snapshot
        through shared memory and each worker adopts the zero-copy views
        here instead of recompiling from the list-of-lists adjacency.
        The snapshot is pinned to the *current* adjacency version, so a
        later mutation invalidates it exactly like a locally compiled
        one.
        """
        indptr = [np.asarray(ptr, dtype=np.int64) for ptr, _ in layers]
        indices = [np.asarray(idx, dtype=np.int64) for _, idx in layers]
        self._search_mode = _SearchMode(self._adjacency_version, indptr, indices)

    def search_mode_arrays(self) -> "list[tuple[np.ndarray, np.ndarray]]":
        """The compiled snapshot's per-layer arrays (for shm publishing)."""
        mode = self.search_mode()
        return list(zip(mode.indptr, mode.indices))

    # -- search ----------------------------------------------------------------

    def _greedy_closest(
        self,
        query: np.ndarray,
        start: int,
        layer: int,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
    ) -> int:
        """Greedy walk to a local minimum of distance-to-query at ``layer``."""
        current = start
        current_dist = float(
            squared_distances_to_many(query, self._buffer[current][np.newaxis])[0]
        )
        improved = True
        while improved:
            improved = False
            if neighbors_of is not None:
                neighbor_ids = neighbors_of(current, layer)
            else:
                neighbor_ids = self._nodes[current].neighbors[layer]
            if not neighbor_ids:
                break
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = neighbor_ids[best]
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        stats: SearchStats | None = None,
        neighbors_of: "Callable[[int, int], list[int]] | None" = None,
    ) -> list[tuple[float, int]]:
        """Beam search at one layer; returns up to ``ef`` (dist, id) ascending."""
        visited = set(entry_points)
        entry_dists = squared_distances_to_many(query, self._buffer[entry_points])
        if stats is not None:
            stats.distance_computations += len(entry_points)
        candidates = [(float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(candidates)  # min-heap by distance
        results = [(-float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(results)  # max-heap via negation
        while len(results) > ef:
            heapq.heappop(results)
        while candidates:
            dist, node = heapq.heappop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            if stats is not None:
                stats.hops += 1
            adjacent = (
                self._nodes[node].neighbors[layer]
                if neighbors_of is None
                else neighbors_of(node, layer)
            )
            neighbor_ids = [n for n in adjacent if n not in visited]
            if not neighbor_ids:
                continue
            visited.update(neighbor_ids)
            dists = squared_distances_to_many(query, self._buffer[neighbor_ids])
            if stats is not None:
                stats.distance_computations += len(neighbor_ids)
            bound = -results[0][0] if len(results) >= ef else math.inf
            for neighbor_dist, neighbor in zip(dists.tolist(), neighbor_ids):
                if neighbor_dist < bound or len(results) < ef:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
                    bound = -results[0][0] if len(results) >= ef else math.inf
        ordered = sorted((-negated, item) for negated, item in results)
        return ordered

    def _greedy_closest_flat(
        self, query: np.ndarray, start: int, layer: int, mode: _SearchMode
    ) -> int:
        """CSR twin of :meth:`_greedy_closest` — identical walk."""
        indptr = mode.indptr[layer]
        indices = mode.indices[layer]
        buffer = self._buffer
        current = start
        current_dist = float(
            squared_distances_to_many(query, buffer[current][np.newaxis])[0]
        )
        improved = True
        while improved:
            improved = False
            neighbor_ids = indices[indptr[current] : indptr[current + 1]]
            if neighbor_ids.shape[0] == 0:
                break
            dists = squared_distances_to_many(query, buffer[neighbor_ids])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = int(neighbor_ids[best])
                current_dist = float(dists[best])
                improved = True
        return current

    def _search_layer_flat(
        self,
        query: np.ndarray,
        entry_points: list[int],
        ef: int,
        layer: int,
        mode: _SearchMode,
        stats: SearchStats | None = None,
    ) -> list[tuple[float, int]]:
        """CSR twin of :meth:`_search_layer` — bit-identical beam.

        Every decision the oracle makes is replayed on the flat
        representation: the CSR row preserves neighbor-list order, the
        epoch-stamped mask keeps exactly the oracle's not-yet-visited
        subsequence, and the distance block is the same
        ``squared_distances_to_many`` einsum over the same gathered rows
        (per-row reductions are independent of batch composition, the
        invariant the bulk build already relies on).  Stats accounting —
        including the hop charged on an all-visited expansion — matches
        line for line.

        Once the beam is full its acceptance bound only ever tightens
        (every accept replaces the current worst with something
        strictly better), so a neighbor at or beyond the bound *before*
        the row is processed is rejected no matter what gets accepted
        ahead of it.  That makes the reject decisions — the vast
        majority late in the search — safe to take vectorized in one
        mask, leaving only the few potential accepts for the sequential
        decision loop.  Heap behavior is value-deterministic (pops
        compare ``(dist, id)`` tuples, never insertion order), so the
        pruned replay keeps the oracle's heap contents, and therefore
        its traversal, exactly.
        """
        indptr = mode.indptr[layer]
        indices = mode.indices[layer]
        visited, epoch = mode.next_epoch(len(self._nodes))
        for point in entry_points:
            visited[point] = epoch
        entry_dists = squared_distances_to_many(query, self._buffer[entry_points])
        if stats is not None:
            stats.distance_computations += len(entry_points)
        candidates = [(float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(candidates)  # min-heap by distance
        results = [(-float(d), p) for d, p in zip(entry_dists, entry_points)]
        heapq.heapify(results)  # max-heap via negation
        while len(results) > ef:
            heapq.heappop(results)
        buffer = self._buffer
        push = heapq.heappush
        pop = heapq.heappop
        while candidates:
            dist, node = pop(candidates)
            if results and dist > -results[0][0] and len(results) >= ef:
                break
            if stats is not None:
                stats.hops += 1
            adjacent = indices[indptr[node] : indptr[node + 1]]
            if adjacent.shape[0]:
                fresh = adjacent[visited[adjacent] != epoch]
            else:
                fresh = adjacent
            if fresh.shape[0] == 0:
                continue
            visited[fresh] = epoch
            # Inlined squared_distances_to_many (one call per expansion
            # is the hot path's dominant dispatch cost).
            diff = buffer[fresh] - query
            dists = np.einsum("ij,ij->i", diff, diff)
            if stats is not None:
                stats.distance_computations += fresh.shape[0]
            if len(results) >= ef:
                # Full beam: the bound is non-increasing, so reject
                # everything at/beyond it in one mask (see docstring).
                bound = -results[0][0]
                keep = dists < bound
                if not keep.all():
                    fresh = fresh[keep]
                    if fresh.shape[0] == 0:
                        continue
                    dists = dists[keep]
                for neighbor_dist, neighbor in zip(dists.tolist(), fresh.tolist()):
                    if neighbor_dist < bound:
                        push(candidates, (neighbor_dist, neighbor))
                        push(results, (-neighbor_dist, neighbor))
                        pop(results)
                        bound = -results[0][0]
            else:
                bound = math.inf
                for neighbor_dist, neighbor in zip(dists.tolist(), fresh.tolist()):
                    if neighbor_dist < bound or len(results) < ef:
                        push(candidates, (neighbor_dist, neighbor))
                        push(results, (-neighbor_dist, neighbor))
                        if len(results) > ef:
                            pop(results)
                        bound = -results[0][0] if len(results) >= ef else math.inf
        ordered = sorted((-negated, item) for negated, item in results)
        return ordered

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k-ANN search: returns ``(ids, squared_distances)`` nearest-first.

        Parameters
        ----------
        query:
            Query vector (same space as the indexed vectors — DCPE
            ciphertexts in the PP-ANNS scheme).
        k:
            Number of neighbors to return.
        ef_search:
            Beam width at layer 0; defaults to ``max(k, 2m)``.  Larger
            values trade throughput for recall (the x-axis sweeps in the
            paper's figures).  When tombstones exist the layer-0 beam is
            widened by the tombstone count so deleted nodes sitting
            inside the beam cannot crowd live results below ``k`` (the
            widening is a no-op on a tombstone-free graph; compaction
            restores the narrow beam).
        stats:
            Optional accumulator for instrumentation.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, query.shape[-1], what="query")
        if self._entry_point is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.m)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        current = self._entry_point
        for layer in range(self._max_level, 0, -1):
            current = self._greedy_closest(query, current, layer)
        beam = ef + len(self._deleted)
        found = self._search_layer(query, [current], beam, 0, stats=stats)
        live = [(dist, item) for dist, item in found if item not in self._deleted]
        top = live[:k]
        ids = np.array([item for _, item in top], dtype=np.int64)
        dists = np.array([dist for dist, _ in top])
        return ids, dists

    def search_vectorized(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bit-identical twin of :meth:`search` over the CSR search mode.

        Same contract, same validation, same results (ids, dists, and
        stats counters) — but the traversal runs on the flat
        :class:`_SearchMode` snapshot: CSR slices instead of Python
        lists, an epoch-stamped visited array instead of a ``set``, and
        heap values converted once per distance block.  Compiles the
        snapshot lazily if the adjacency changed since the last call.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, query.shape[-1], what="query")
        if self._entry_point is None:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.m)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        mode = self.search_mode()
        current = self._entry_point
        for layer in range(self._max_level, 0, -1):
            current = self._greedy_closest_flat(query, current, layer, mode)
        beam = ef + len(self._deleted)
        found = self._search_layer_flat(query, [current], beam, 0, mode, stats=stats)
        live = [(dist, item) for dist, item in found if item not in self._deleted]
        top = live[:k]
        ids = np.array([item for _, item in top], dtype=np.int64)
        dists = np.array([dist for dist, _ in top])
        return ids, dists

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Lockstep multi-query twin of :meth:`search` — bit-identical
        per query.

        Every query's beam advances one node expansion per round, and
        the round's distance blocks — one per expanding query — are
        fused into a single gather + subtract + einsum over the
        concatenated neighbor rows.  Per-row reductions are independent
        of batch composition (the invariant the bulk build and the flat
        single-query path already rely on), and each query's
        pop/expand/accept sequence is untouched, so ids, distances and
        stats are exactly what :meth:`search` returns for that query
        alone; only the numpy dispatch cost is amortized across the
        micro-batch.  Queries finish independently: a beam that hits
        its termination bound drops out of the lockstep while the rest
        keep marching.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self._dim:
            raise DimensionMismatchError(
                self._dim, queries.shape[-1], what="query batch"
            )
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        num = queries.shape[0]
        if self._entry_point is None or num == 0:
            return [(np.empty(0, dtype=np.int64), np.empty(0)) for _ in range(num)]
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.m)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        if stats_list is None:
            stats_list = [None] * num
        mode = self.search_mode()
        beam = ef + len(self._deleted)
        entries = []
        for row in range(num):
            current = self._entry_point
            for layer in range(self._max_level, 0, -1):
                current = self._greedy_closest_flat(queries[row], current, layer, mode)
            entries.append(current)
        found = lockstep_beam_search(
            self._buffer,
            len(self._nodes),
            queries,
            entries,
            beam,
            mode.indptr[0],
            mode.indices[0],
            mode,
            stats_list,
        )
        out = []
        for row in range(num):
            live = [
                (dist, item)
                for dist, item in found[row]
                if item not in self._deleted
            ]
            top = live[:k]
            out.append(
                (
                    np.array([item for _, item in top], dtype=np.int64),
                    np.array([dist for dist, _ in top]),
                )
            )
        return out

    # -- maintenance -------------------------------------------------------------

    def mark_deleted(self, node: int) -> None:
        """Mark ``node`` deleted so searches skip it (edges remain)."""
        if not 0 <= node < len(self._nodes):
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)
        if node == self._entry_point:
            self._reassign_entry_point()

    def _ensure_reverse(self) -> "dict[int, set[tuple[int, int]]]":
        """The target -> {(source, layer)} reverse-adjacency map.

        Built with one full scan on first use, then maintained
        incrementally by the neighbor-list write helpers — so
        :meth:`in_neighbors` and :meth:`remove_edges_to` are O(degree)
        per call instead of rescanning every edge in the graph.
        """
        if self._reverse is None:
            reverse: "dict[int, set[tuple[int, int]]]" = {}
            for source, record in enumerate(self._nodes):
                for layer, adjacent in enumerate(record.neighbors):
                    for target in adjacent:
                        reverse.setdefault(target, set()).add((source, layer))
            self._reverse = reverse
        return self._reverse

    def in_neighbors(self, node: int, layer: int = 0) -> list[int]:
        """Ids of live nodes with an edge *into* ``node`` at ``layer``.

        Ascending id order (the order the historical full-graph scan
        produced — deletion repair iterates this, so the order is part
        of the semantics).
        """
        reverse = self._ensure_reverse()
        return sorted(
            source
            for source, edge_layer in reverse.get(node, ())
            if edge_layer == layer and source != node and source not in self._deleted
        )

    def remove_edges_to(self, node: int) -> None:
        """Drop every edge pointing at ``node`` (deletion, Section V-D)."""
        reverse = self._ensure_reverse()
        for source, layer in sorted(reverse.pop(node, ())):
            self._nodes[source].neighbors[layer].remove(node)
        self._adjacency_version += 1

    def repair_node(self, node: int) -> None:
        """Re-link ``node`` by re-running neighbor selection on every layer.

        Used after a deletion disturbed this node's out-neighborhood
        (Section V-D: re-insert each in-neighbor of the deleted vector).
        """
        vector = self._buffer[node]
        entry = self._entry_point
        if entry is None or entry == node:
            return
        current = entry
        node_level = self._nodes[node].level
        for layer in range(self._max_level, node_level, -1):
            current = self._greedy_closest(vector, current, layer)
        ef = max(self._params.ef_construction, 1)
        for layer in range(min(node_level, self._max_level), -1, -1):
            candidates = self._search_layer(vector, [current], ef, layer)
            candidates = [
                (dist, item)
                for dist, item in candidates
                if item != node and item not in self._deleted
            ]
            selected = self._select_neighbors(vector, candidates, self._params.m, layer)
            self._set_neighbor_list(node, layer, [item for _, item in selected])
            for _, neighbor in selected:
                self._link(neighbor, node, layer)
            if candidates:
                current = candidates[0][1]

    def _reassign_entry_point(self) -> None:
        """Pick a new entry point after the old one was deleted."""
        best: int | None = None
        best_level = -1
        for candidate, record in enumerate(self._nodes):
            if candidate in self._deleted:
                continue
            if record.level > best_level:
                best = candidate
                best_level = record.level
        self._entry_point = best
        self._max_level = best_level

    # -- introspection -------------------------------------------------------------

    def deleted_ids(self) -> np.ndarray:
        """Sorted tombstoned ids as int64 (see :func:`sorted_id_array`)."""
        return sorted_id_array(self._deleted)

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(levels, edges)`` export for persistence.

        ``levels`` is ``(n,)`` int64; ``edges`` is ``(e, 3)`` int64 rows
        of ``(node, level, neighbor)`` ordered by node, then level, then
        neighbor-list position — the order ``docs/FORMATS.md`` specifies.
        Assembled from whole-array primitives (``fromiter`` over chained
        lists + ``repeat``) instead of a per-edge Python loop.
        """
        count = len(self._nodes)
        levels = np.fromiter(
            (node.level for node in self._nodes), dtype=np.int64, count=count
        )
        list_nodes: list[int] = []
        list_levels: list[int] = []
        list_lengths: list[int] = []
        chunks: list[list[int]] = []
        for node, record in enumerate(self._nodes):
            for level, adjacent in enumerate(record.neighbors):
                if adjacent:
                    list_nodes.append(node)
                    list_levels.append(level)
                    list_lengths.append(len(adjacent))
                    chunks.append(adjacent)
        if not chunks:
            return levels, np.empty((0, 3), dtype=np.int64)
        lengths = np.array(list_lengths, dtype=np.int64)
        targets = np.fromiter(
            itertools.chain.from_iterable(chunks),
            dtype=np.int64,
            count=int(lengths.sum()),
        )
        sources = np.repeat(np.array(list_nodes, dtype=np.int64), lengths)
        layers = np.repeat(np.array(list_levels, dtype=np.int64), lengths)
        return levels, np.column_stack((sources, layers, targets))

    def degree_histogram(self, layer: int = 0) -> dict[int, int]:
        """Histogram of out-degrees at ``layer`` over live nodes."""
        histogram: dict[int, int] = {}
        for node, record in enumerate(self._nodes):
            if node in self._deleted or layer > record.level:
                continue
            degree = len(record.neighbors[layer])
            histogram[degree] = histogram.get(degree, 0) + 1
        return histogram

    def edge_count(self, layer: int = 0) -> int:
        """Total directed edges at ``layer`` over live nodes."""
        return sum(
            len(record.neighbors[layer])
            for node, record in enumerate(self._nodes)
            if node not in self._deleted and layer <= record.level
        )
