"""A navigating-spreading-out-style flat proximity graph.

Section V-A of the paper notes the privacy-preserving index "can leverage
other proximity graph-based approaches ... like the navigating
spreading-out graph [NSG]" in place of HNSW.  This module provides that
alternative backend so the claim is exercised: a single-layer graph built
by

1. computing an exact k-NN graph over the (encrypted) vectors,
2. picking the medoid as the fixed navigation entry point,
3. pruning each node's candidate set with NSG's monotonic-path edge
   selection (the same dominance rule as HNSW's heuristic), and
4. adding reverse edges and connecting any stragglers to the medoid.

Search is the standard best-first beam search from the medoid.  The build
is O(n^2) from the exact k-NN graph — fine at the scaled-down sizes this
reproduction targets, and it keeps the substrate dependency-free.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import pairwise_squared_distances, squared_distances_to_many
from repro.hnsw.graph import (
    SearchStats,
    _SearchMode,
    compile_search_mode,
    lockstep_beam_search,
    sorted_id_array,
)

__all__ = ["NSGParams", "NSGIndex"]


@dataclass(frozen=True)
class NSGParams:
    """Construction parameters for the NSG-style graph.

    Attributes
    ----------
    knn:
        Size of the initial exact k-NN candidate lists.
    max_degree:
        Out-degree cap after pruning (NSG's ``R``).
    """

    knn: int = 32
    max_degree: int = 16

    def __post_init__(self) -> None:
        if self.knn < 1:
            raise ParameterError(f"knn must be >= 1, got {self.knn}")
        if self.max_degree < 1:
            raise ParameterError(f"max_degree must be >= 1, got {self.max_degree}")


class NSGIndex:
    """A flat proximity graph with a medoid entry point.

    Parameters
    ----------
    vectors:
        The ``(n, d)`` vectors to index (DCPE ciphertexts in the PP-ANNS
        setting).
    params:
        Construction parameters.
    """

    def __init__(self, vectors: np.ndarray, params: NSGParams | None = None) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {vectors.shape}"
            )
        self._vectors = vectors
        self._params = params if params is not None else NSGParams()
        self._medoid = 0
        self._neighbors: list[list[int]] = []
        self._deleted: set[int] = set()
        self._adjacency_version = 0
        self._search_mode: "_SearchMode | None" = None
        self._build()
        self._adjacency_version += 1

    @classmethod
    def from_state(
        cls,
        vectors: np.ndarray,
        params: NSGParams,
        neighbors: list[list[int]],
        medoid: int,
        deleted: set[int] | None = None,
    ) -> "NSGIndex":
        """Reconstruct an index from persisted adjacency, skipping the
        O(n^2) build (used by :mod:`repro.core.persistence`)."""
        index = cls.__new__(cls)
        index._vectors = np.asarray(vectors, dtype=np.float64)
        index._params = params
        index._medoid = int(medoid)
        index._neighbors = [list(adj) for adj in neighbors]
        index._deleted = set(deleted) if deleted is not None else set()
        index._adjacency_version = 0
        index._search_mode = None
        return index

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._vectors.shape[1])

    @property
    def params(self) -> NSGParams:
        """Construction parameters."""
        return self._params

    @property
    def medoid(self) -> int:
        """Id of the navigation entry point."""
        return self._medoid

    @property
    def vectors(self) -> np.ndarray:
        """The indexed vectors."""
        return self._vectors

    def neighbors(self, node: int) -> list[int]:
        """Out-neighbors of ``node`` (copy)."""
        return list(self._neighbors[node])

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been tombstoned."""
        return node in self._deleted

    def deleted_ids(self) -> np.ndarray:
        """Sorted tombstoned ids as int64 (see :func:`sorted_id_array`)."""
        return sorted_id_array(self._deleted)

    def adjacency_arrays(self) -> np.ndarray:
        """Flat ``(e, 2)`` int64 edge export ``(node, neighbor)``.

        Ordered by node, then neighbor-list position (the persistence
        order in ``docs/FORMATS.md``); assembled from whole-array
        primitives instead of a per-edge Python loop.
        """
        lengths = np.fromiter(
            (len(adjacent) for adjacent in self._neighbors),
            dtype=np.int64,
            count=len(self._neighbors),
        )
        total = int(lengths.sum())
        if total == 0:
            return np.empty((0, 2), dtype=np.int64)
        targets = np.fromiter(
            itertools.chain.from_iterable(self._neighbors),
            dtype=np.int64,
            count=total,
        )
        sources = np.repeat(np.arange(len(self._neighbors), dtype=np.int64), lengths)
        return np.column_stack((sources, targets))

    def edge_count(self) -> int:
        """Total directed edges over live nodes."""
        return sum(
            len(adj)
            for node, adj in enumerate(self._neighbors)
            if node not in self._deleted
        )

    def _build(self) -> None:
        n = self.size
        knn = min(self._params.knn, n - 1)
        all_dists = pairwise_squared_distances(self._vectors, self._vectors)
        # Medoid: vector minimizing total distance to the rest.
        self._medoid = int(np.argmin(all_dists.sum(axis=1)))
        self._neighbors = []
        if n == 1:
            self._neighbors.append([])
            return
        for node in range(n):
            dists = all_dists[node]
            order = np.argsort(dists, kind="stable")
            candidates = [int(i) for i in order if i != node][:knn]
            pruned = self._prune(node, candidates, dists)
            self._neighbors.append(pruned)
        # Reverse edges improve reachability, then cap degrees again.
        for node in range(n):
            for neighbor in list(self._neighbors[node]):
                if node not in self._neighbors[neighbor]:
                    self._neighbors[neighbor].append(node)
        for node in range(n):
            if len(self._neighbors[node]) > self._params.max_degree:
                dists = all_dists[node]
                self._neighbors[node] = self._prune(
                    node, sorted(self._neighbors[node], key=lambda i: dists[i]), dists
                )
        # Guarantee connectivity through the medoid.
        reachable = self._reachable_from(self._medoid)
        for node in range(n):
            if node not in reachable:
                self._neighbors[self._medoid].append(node)
                self._neighbors[node].append(self._medoid)

    def _prune(self, node: int, candidates: list[int], dists: np.ndarray) -> list[int]:
        """NSG edge selection: keep candidates not dominated by a kept one."""
        selected: list[int] = []
        for candidate in candidates:
            if len(selected) >= self._params.max_degree:
                break
            dominated = False
            for kept in selected:
                edge = squared_distances_to_many(
                    self._vectors[candidate], self._vectors[kept][np.newaxis]
                )[0]
                if edge < dists[candidate]:
                    dominated = True
                    break
            if not dominated:
                selected.append(candidate)
        return selected

    def _reachable_from(self, start: int) -> set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in self._neighbors[node]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return seen

    def insert(self, vector: np.ndarray) -> int:
        """Insert one vector, returning its id.

        NSG has no native incremental build; the new node is linked to its
        pruned nearest neighbors and reverse edges are added (with the
        usual degree cap), which preserves search quality at the scales
        this reproduction targets without an O(n^2) rebuild.
        """
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, vector.shape[-1])
        new_id = self.size
        dists = np.append(squared_distances_to_many(vector, self._vectors), 0.0)
        self._vectors = np.vstack([self._vectors, vector])
        order = np.argsort(dists[:new_id], kind="stable")
        candidates = [
            int(i) for i in order if int(i) not in self._deleted
        ][: self._params.knn]
        self._neighbors.append(self._prune(new_id, candidates, dists))
        for neighbor in self._neighbors[new_id]:
            if new_id not in self._neighbors[neighbor]:
                self._neighbors[neighbor].append(new_id)
                if len(self._neighbors[neighbor]) > self._params.max_degree:
                    neighbor_dists = squared_distances_to_many(
                        self._vectors[neighbor], self._vectors
                    )
                    self._neighbors[neighbor] = self._prune(
                        neighbor,
                        sorted(
                            self._neighbors[neighbor],
                            key=lambda i: neighbor_dists[i],
                        ),
                        neighbor_dists,
                    )
        self._adjacency_version += 1
        return new_id

    # -- flat search mode (CSR) -------------------------------------------------

    def search_mode(self) -> _SearchMode:
        """The CSR snapshot of the (single-layer) adjacency, compiled
        lazily per graph generation — see
        :meth:`repro.hnsw.graph.HNSWIndex.search_mode`."""
        mode = self._search_mode
        if mode is not None and mode.version == self._adjacency_version:
            return mode
        mode = compile_search_mode(
            self._adjacency_version, self.size, [self._neighbors]
        )
        self._search_mode = mode
        return mode

    def adopt_search_mode(
        self, layers: "list[tuple[np.ndarray, np.ndarray]]"
    ) -> None:
        """Install precompiled CSR arrays (the shm zero-copy attach)."""
        indptr = [np.asarray(ptr, dtype=np.int64) for ptr, _ in layers]
        indices = [np.asarray(idx, dtype=np.int64) for _, idx in layers]
        self._search_mode = _SearchMode(self._adjacency_version, indptr, indices)

    def search_mode_arrays(self) -> "list[tuple[np.ndarray, np.ndarray]]":
        """The compiled snapshot's per-layer arrays (for shm publishing)."""
        mode = self.search_mode()
        return list(zip(mode.indptr, mode.indices))

    def mark_deleted(self, node: int) -> None:
        """Tombstone ``node``: it keeps routing but never appears in results."""
        if not 0 <= node < self.size:
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Best-first beam search from the medoid.

        Same contract as :meth:`repro.hnsw.graph.HNSWIndex.search`,
        including the tombstone beam widening: when tombstones exist the
        beam grows by their count so they cannot crowd live results
        below ``k``.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, query.shape[-1], what="query")
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.max_degree)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        beam = ef + len(self._deleted)
        start_dist = float(
            squared_distances_to_many(query, self._vectors[self._medoid][np.newaxis])[0]
        )
        if stats is not None:
            stats.distance_computations += 1
        visited = {self._medoid}
        candidates = [(start_dist, self._medoid)]
        results = [(-start_dist, self._medoid)]
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= beam and dist > -results[0][0]:
                break
            if stats is not None:
                stats.hops += 1
            unvisited = [n for n in self._neighbors[node] if n not in visited]
            if not unvisited:
                continue
            visited.update(unvisited)
            dists = squared_distances_to_many(query, self._vectors[unvisited])
            if stats is not None:
                stats.distance_computations += len(unvisited)
            bound = -results[0][0] if len(results) >= beam else math.inf
            for neighbor_dist, neighbor in zip(dists.tolist(), unvisited):
                if neighbor_dist < bound or len(results) < beam:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > beam:
                        heapq.heappop(results)
                    bound = -results[0][0] if len(results) >= beam else math.inf
        ordered = sorted((-negated, node) for negated, node in results)
        live = [(dist, node) for dist, node in ordered if node not in self._deleted]
        top = live[:k]
        ids = np.array([node for _, node in top], dtype=np.int64)
        dists_out = np.array([dist for dist, _ in top])
        return ids, dists_out

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats | None] | None" = None,
    ) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Lockstep multi-query twin of :meth:`search_vectorized`.

        Every query starts at the medoid and replays its own beam
        decisions exactly (ids, distances, stats all bit-identical to
        :meth:`search`); the per-round neighbor distance blocks are
        fused across the batch (see
        :func:`repro.hnsw.graph.lockstep_beam_search`).
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(
                self.dim, queries.shape[-1], what="query batch"
            )
        num = queries.shape[0]
        if num == 0:
            return []
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.max_degree)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        if stats_list is None:
            stats_list = [None] * num
        beam = ef + len(self._deleted)
        mode = self.search_mode()
        found = lockstep_beam_search(
            self._vectors, self.size, queries, [self._medoid] * num, beam,
            mode.indptr[0], mode.indices[0], mode, stats_list,
        )
        out = []
        for row in range(num):
            live = [
                (dist, node) for dist, node in found[row]
                if node not in self._deleted
            ]
            top = live[:k]
            ids = np.array([node for _, node in top], dtype=np.int64)
            dists_out = np.array([dist for dist, _ in top])
            out.append((ids, dists_out))
        return out

    def search_vectorized(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bit-identical twin of :meth:`search` over the CSR search mode.

        Same validation, same beam decisions, same stats accounting —
        the traversal just reads CSR slices and an epoch-stamped visited
        array instead of Python lists and a ``set`` (see
        :meth:`repro.hnsw.graph.HNSWIndex.search_vectorized`).
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, query.shape[-1], what="query")
        ef = ef_search if ef_search is not None else max(k, 2 * self._params.max_degree)
        if ef < k:
            raise ParameterError(f"ef_search ({ef}) must be >= k ({k})")
        beam = ef + len(self._deleted)
        mode = self.search_mode()
        indptr = mode.indptr[0]
        indices = mode.indices[0]
        visited_arr, epoch = mode.next_epoch(self.size)
        vectors = self._vectors
        start_dist = float(
            squared_distances_to_many(query, vectors[self._medoid][np.newaxis])[0]
        )
        if stats is not None:
            stats.distance_computations += 1
        visited_arr[self._medoid] = epoch
        candidates = [(start_dist, self._medoid)]
        results = [(-start_dist, self._medoid)]
        push = heapq.heappush
        pop = heapq.heappop
        while candidates:
            dist, node = pop(candidates)
            if len(results) >= beam and dist > -results[0][0]:
                break
            if stats is not None:
                stats.hops += 1
            adjacent = indices[indptr[node] : indptr[node + 1]]
            if adjacent.shape[0]:
                fresh = adjacent[visited_arr[adjacent] != epoch]
            else:
                fresh = adjacent
            if fresh.shape[0] == 0:
                continue
            visited_arr[fresh] = epoch
            # Inlined squared_distances_to_many (the hot path's
            # dominant dispatch cost).
            diff = vectors[fresh] - query
            dists = np.einsum("ij,ij->i", diff, diff)
            if stats is not None:
                stats.distance_computations += fresh.shape[0]
            if len(results) >= beam:
                # Full beam: the acceptance bound only ever tightens,
                # so neighbors at/beyond it are rejected in one mask —
                # same accepted multiset, same heap contents (see
                # HNSWIndex._search_layer_flat).
                bound = -results[0][0]
                keep = dists < bound
                if not keep.all():
                    fresh = fresh[keep]
                    if fresh.shape[0] == 0:
                        continue
                    dists = dists[keep]
                for neighbor_dist, neighbor in zip(dists.tolist(), fresh.tolist()):
                    if neighbor_dist < bound:
                        push(candidates, (neighbor_dist, neighbor))
                        push(results, (-neighbor_dist, neighbor))
                        pop(results)
                        bound = -results[0][0]
            else:
                bound = math.inf
                for neighbor_dist, neighbor in zip(dists.tolist(), fresh.tolist()):
                    if neighbor_dist < bound or len(results) < beam:
                        push(candidates, (neighbor_dist, neighbor))
                        push(results, (-neighbor_dist, neighbor))
                        if len(results) > beam:
                            pop(results)
                        bound = -results[0][0] if len(results) >= beam else math.inf
        ordered = sorted((-negated, node) for negated, node in results)
        live = [(dist, node) for dist, node in ordered if node not in self._deleted]
        top = live[:k]
        ids = np.array([node for _, node in top], dtype=np.int64)
        dists_out = np.array([dist for dist, _ in top])
        return ids, dists_out
