"""IVF-Flat — inverted-file index with a k-means coarse quantizer.

Inverted files are the third classical ANN index family the paper
discusses (Section I and VIII cite Jegou et al.'s product-quantization
IVF [13]); like HNSW and LSH they operate purely on vector geometry, so
an IVF index can also be built **over DCPE ciphertexts** as yet another
filter-phase backend (Section V-A's substitutability remark, exercised by
the ablation tests).

Construction: Lloyd's k-means (from scratch, k-means++ seeding) assigns
every vector to its nearest of ``num_lists`` centroids; each centroid
keeps a posting list.  Search probes the ``nprobe`` closest centroids and
re-ranks their members exactly — ``nprobe`` is the recall/throughput
knob, playing the role HNSW's ``ef_search`` does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import (
    gemm_topk_preselect,
    pairwise_squared_distances,
    squared_distances_to_many,
)
from repro.hnsw.graph import SearchStats, sorted_id_array

__all__ = ["IVFParams", "IVFFlatIndex", "kmeans"]


@dataclass(frozen=True)
class IVFParams:
    """IVF configuration.

    Attributes
    ----------
    num_lists:
        Number of coarse clusters (posting lists).
    train_iterations:
        Lloyd iterations for the quantizer.
    """

    num_lists: int = 16
    train_iterations: int = 10

    def __post_init__(self) -> None:
        if self.num_lists < 1:
            raise ParameterError(f"num_lists must be >= 1, got {self.num_lists}")
        if self.train_iterations < 1:
            raise ParameterError(
                f"train_iterations must be >= 1, got {self.train_iterations}"
            )


def kmeans(
    vectors: np.ndarray,
    num_clusters: int,
    iterations: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's k-means with k-means++ seeding.

    Returns ``(centroids, assignments)``.  Empty clusters are re-seeded
    from the points farthest from their current centroid.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    n = vectors.shape[0]
    if num_clusters > n:
        num_clusters = n
    # k-means++ seeding.
    first = int(rng.integers(0, n))
    centroids = [vectors[first]]
    closest = squared_distances_to_many(vectors[first], vectors)
    for _ in range(num_clusters - 1):
        total = float(closest.sum())
        if total <= 0:
            centroids.append(vectors[int(rng.integers(0, n))])
            continue
        probabilities = closest / total
        chosen = int(rng.choice(n, p=probabilities))
        centroids.append(vectors[chosen])
        closest = np.minimum(
            closest, squared_distances_to_many(vectors[chosen], vectors)
        )
    centroid_array = np.stack(centroids)

    assignments = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = pairwise_squared_distances(vectors, centroid_array)
        assignments = np.argmin(distances, axis=1)
        for cluster in range(centroid_array.shape[0]):
            members = vectors[assignments == cluster]
            if members.shape[0] > 0:
                centroid_array[cluster] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the worst-served point.
                worst = int(np.argmax(distances[np.arange(n), assignments]))
                centroid_array[cluster] = vectors[worst]
    distances = pairwise_squared_distances(vectors, centroid_array)
    assignments = np.argmin(distances, axis=1)
    return centroid_array, assignments


class IVFFlatIndex:
    """Inverted-file index over a fixed vector set.

    Parameters
    ----------
    vectors:
        ``(n, d)`` vectors to index (DCPE ciphertexts in the PP-ANNS
        setting).
    params:
        IVF configuration.
    rng:
        Randomness for quantizer training.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        params: IVFParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {vectors.shape}"
            )
        self._vectors = vectors
        self._params = params if params is not None else IVFParams()
        rng = rng if rng is not None else np.random.default_rng()
        self._centroids, assignments = kmeans(
            vectors, self._params.num_lists, self._params.train_iterations, rng
        )
        self._lists: list[np.ndarray] = [
            np.nonzero(assignments == cluster)[0]
            for cluster in range(self._centroids.shape[0])
        ]
        self._deleted: set[int] = set()
        # Row-norm cache for the batched rerank path; keyed by array
        # identity so the vstack in insert() invalidates it naturally.
        self._norms: np.ndarray | None = None
        self._norms_for: np.ndarray | None = None

    @classmethod
    def from_state(
        cls,
        vectors: np.ndarray,
        params: IVFParams,
        centroids: np.ndarray,
        assignments: np.ndarray,
        deleted: set[int] | None = None,
    ) -> "IVFFlatIndex":
        """Reconstruct an index from persisted quantizer state, skipping
        k-means training (used by :mod:`repro.core.persistence`)."""
        index = cls.__new__(cls)
        index._vectors = np.asarray(vectors, dtype=np.float64)
        index._params = params
        index._centroids = np.asarray(centroids, dtype=np.float64)
        index._deleted = set(deleted) if deleted is not None else set()
        index._norms = None
        index._norms_for = None
        live = np.array(
            [i not in index._deleted for i in range(index._vectors.shape[0])]
        )
        index._lists = [
            np.nonzero((assignments == cluster) & live)[0]
            for cluster in range(index._centroids.shape[0])
        ]
        return index

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._vectors.shape[1])

    @property
    def params(self) -> IVFParams:
        """IVF configuration."""
        return self._params

    @property
    def centroids(self) -> np.ndarray:
        """The trained coarse-quantizer centroids."""
        return self._centroids

    @property
    def num_lists(self) -> int:
        """Number of posting lists actually trained."""
        return int(self._centroids.shape[0])

    @property
    def vectors(self) -> np.ndarray:
        """The indexed vectors, including any deleted slots."""
        return self._vectors

    def list_sizes(self) -> list[int]:
        """Posting-list occupancy (for balance diagnostics)."""
        return [int(posting.shape[0]) for posting in self._lists]

    def assignments(self) -> np.ndarray:
        """Per-vector posting-list assignment (for persistence).

        Computed as the nearest centroid, which is how both k-means'
        final pass and :meth:`insert` assign vectors — so it matches
        posting-list membership for every live vector.
        """
        return np.argmin(
            pairwise_squared_distances(self._vectors, self._centroids), axis=1
        ).astype(np.int64)

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been tombstoned."""
        return node in self._deleted

    def deleted_ids(self) -> np.ndarray:
        """Sorted tombstoned ids as int64 (see :func:`sorted_id_array`)."""
        return sorted_id_array(self._deleted)

    def insert(self, vector: np.ndarray) -> int:
        """Insert one vector into its nearest posting list, returning its id."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, vector.shape[-1])
        new_id = self.size
        self._vectors = np.vstack([self._vectors, vector])
        nearest = int(np.argmin(squared_distances_to_many(vector, self._centroids)))
        self._lists[nearest] = np.append(self._lists[nearest], new_id)
        return new_id

    def mark_deleted(self, node: int) -> None:
        """Remove ``node`` from its posting list so probes skip it."""
        if not 0 <= node < self.size:
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)
        for cluster, posting in enumerate(self._lists):
            if np.any(posting == node):
                self._lists[cluster] = posting[posting != node]
                break

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int = 4,
        stats: SearchStats | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe the ``nprobe`` nearest lists, exact-rerank their members.

        Same result contract as the graph indexes: ``(ids, squared
        distances)`` nearest-first.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if nprobe < 1:
            raise ParameterError(f"nprobe must be >= 1, got {nprobe}")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, query.shape[-1], what="query")
        centroid_dists = squared_distances_to_many(query, self._centroids)
        if stats is not None:
            stats.distance_computations += self.num_lists
        probe_order = np.argsort(centroid_dists, kind="stable")[: min(nprobe, self.num_lists)]
        candidates = np.concatenate([self._lists[int(c)] for c in probe_order])
        if candidates.shape[0] == 0:
            return np.empty(0, dtype=np.int64), np.empty(0)
        dists = squared_distances_to_many(query, self._vectors[candidates])
        if stats is not None:
            stats.distance_computations += candidates.shape[0]
            stats.hops += len(probe_order)
        order = np.argsort(dists, kind="stable")[:k]
        return candidates[order].astype(np.int64), dists[order]

    def _row_norms(self) -> np.ndarray:
        vectors = self._vectors
        if self._norms_for is not vectors:
            self._norms = np.einsum("ij,ij->i", vectors, vectors)
            self._norms_for = vectors
        return self._norms

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 4,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched probe-and-rerank, bit-identical to looping :meth:`search`.

        Centroid distances stay on the per-query kernel (so probe order
        is identical); the per-candidate rerank uses a norm-cached
        gather-GEMV to *preselect* the top ``k`` and recomputes their
        distances with the oracle's kernel, falling back to the full
        exact rerank whenever the selection is not provably identical
        (see :func:`repro.hnsw.distance.gemm_topk_preselect`).
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        if nprobe < 1:
            raise ParameterError(f"nprobe must be >= 1, got {nprobe}")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(self.dim, queries.shape[-1], what="queries")
        norms = self._row_norms()
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for row in range(queries.shape[0]):
            query = queries[row]
            stats = stats_list[row] if stats_list is not None else None
            centroid_dists = squared_distances_to_many(query, self._centroids)
            if stats is not None:
                stats.distance_computations += self.num_lists
            probe_order = np.argsort(centroid_dists, kind="stable")[
                : min(nprobe, self.num_lists)
            ]
            candidates = np.concatenate([self._lists[int(c)] for c in probe_order])
            if candidates.shape[0] == 0:
                out.append((np.empty(0, dtype=np.int64), np.empty(0)))
                continue
            block = self._vectors[candidates]
            approx = np.maximum(
                norms[candidates] - 2.0 * (block @ query) + float(query @ query), 0.0
            )
            kk = min(k, candidates.shape[0])
            selected = gemm_topk_preselect(
                approx,
                kk,
                lambda cand, q=query, b=block: squared_distances_to_many(q, b[cand]),
                candidate_cap=4 * kk + 64,
            )
            if selected is None:
                dists = squared_distances_to_many(query, block)
                order = np.argsort(dists, kind="stable")[:k]
                ids, top = candidates[order].astype(np.int64), dists[order]
            else:
                ids = candidates[selected[0]].astype(np.int64)
                top = selected[1]
            if stats is not None:
                stats.distance_computations += candidates.shape[0]
                stats.hops += len(probe_order)
            out.append((ids, top))
        return out
