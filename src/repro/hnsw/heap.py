"""Bounded heaps for k-NN result maintenance.

Two flavours:

* :class:`BoundedMaxHeap` — the ordinary value-keyed heap used by plaintext
  search and the filter phase, where distances are visible numbers.
* :class:`ComparisonMaxHeap` — a max-heap that never sees a distance value;
  it orders items purely through a caller-supplied *comparison oracle*.
  This is exactly what the refine phase of Algorithm 2 needs: the server
  can evaluate ``sign(dist(o,q) - dist(p,q))`` via DCE's ``DistanceComp``
  but learns no magnitudes, so heap maintenance must be comparison-only.
  Each push/replace performs O(log k) oracle calls, matching the paper's
  ``O(k' log k)`` refine-cost analysis.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["BoundedMaxHeap", "ComparisonMaxHeap"]


class BoundedMaxHeap:
    """Keep the ``k`` smallest-valued items seen so far.

    Internally a min-heap of negated values (Python's ``heapq`` is a
    min-heap); ``top`` is the *largest* retained value, i.e. the current
    k-th best distance — the pruning bound used throughout graph search.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"heap capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    def is_full(self) -> bool:
        """Whether the heap holds ``capacity`` items."""
        return len(self._heap) >= self._capacity

    def top_value(self) -> float:
        """The largest retained value (current pruning bound)."""
        if not self._heap:
            raise IndexError("top_value on an empty heap")
        return -self._heap[0][0]

    def push(self, value: float, item: int) -> bool:
        """Offer ``(value, item)``; returns True if it was retained."""
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, (-value, item))
            return True
        if value < self.top_value():
            heapq.heapreplace(self._heap, (-value, item))
            return True
        return False

    def items_sorted(self) -> list[tuple[float, int]]:
        """Retained ``(value, item)`` pairs, ascending by value."""
        return sorted((-negated, item) for negated, item in self._heap)


class ComparisonMaxHeap:
    """A bounded max-heap ordered only by a binary comparison oracle.

    Parameters
    ----------
    capacity:
        Maximum number of items (the ``k`` of Algorithm 2).
    is_farther:
        ``is_farther(a, b) -> bool`` must return True iff item ``a`` is at
        least as far from the query as item ``b``.  With DCE this is
        ``DistanceComp(C_a, C_b, T_q) >= 0``.
    """

    def __init__(self, capacity: int, is_farther: Callable[[int, int], bool]) -> None:
        if capacity <= 0:
            raise ValueError(f"heap capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._is_farther = is_farther
        self._items: list[int] = []
        self._oracle_calls = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> int:
        """Maximum number of retained items."""
        return self._capacity

    @property
    def oracle_calls(self) -> int:
        """Total comparison-oracle invocations (for cost accounting)."""
        return self._oracle_calls

    def is_full(self) -> bool:
        """Whether the heap holds ``capacity`` items."""
        return len(self._items) >= self._capacity

    def top(self) -> int:
        """The farthest retained item (heap root)."""
        if not self._items:
            raise IndexError("top on an empty heap")
        return self._items[0]

    def _farther(self, a: int, b: int) -> bool:
        self._oracle_calls += 1
        return self._is_farther(a, b)

    def _sift_up(self, index: int) -> None:
        while index > 0:
            parent = (index - 1) // 2
            if self._farther(self._items[index], self._items[parent]):
                self._items[index], self._items[parent] = (
                    self._items[parent],
                    self._items[index],
                )
                index = parent
            else:
                break

    def _sift_down(self, index: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * index + 1
            right = left + 1
            largest = index
            if left < size and self._farther(self._items[left], self._items[largest]):
                largest = left
            if right < size and self._farther(self._items[right], self._items[largest]):
                largest = right
            if largest == index:
                return
            self._items[index], self._items[largest] = (
                self._items[largest],
                self._items[index],
            )
            index = largest

    def push(self, item: int) -> None:
        """Insert ``item``; requires the heap not to be full."""
        if self.is_full():
            raise IndexError("push on a full ComparisonMaxHeap; use offer()")
        self._items.append(item)
        self._sift_up(len(self._items) - 1)

    def replace_top(self, item: int) -> int:
        """Replace the farthest item with ``item``; returns the evicted item."""
        if not self._items:
            raise IndexError("replace_top on an empty heap")
        evicted = self._items[0]
        self._items[0] = item
        self._sift_down(0)
        return evicted

    def offer(self, item: int) -> bool:
        """Algorithm 2's insertion: retain ``item`` if it beats the top.

        Returns True if the item was retained.  On a non-full heap the item
        is always retained; on a full heap one oracle call decides, then
        O(log k) calls restore the heap property.
        """
        if not self.is_full():
            self.push(item)
            return True
        if self._farther(self.top(), item):
            self.replace_top(item)
            return True
        return False

    def items(self) -> list[int]:
        """Retained items in arbitrary (heap) order — what the server returns."""
        return list(self._items)

    def items_sorted_by_oracle(self) -> list[int]:
        """Retained items sorted nearest-first using the oracle (O(k^2))."""
        remaining = list(self._items)
        ordered: list[int] = []
        while remaining:
            best = remaining[0]
            for candidate in remaining[1:]:
                if self._farther(best, candidate):
                    best = candidate
            remaining.remove(best)
            ordered.append(best)
        return ordered
