"""Product quantization — the embedding-based ANN family (Section VIII).

The paper's related work divides plaintext k-ANNS into index-based and
*embedding-based* methods, citing product quantization (Jegou, Douze,
Schmid, TPAMI 2011) as the canonical example: vectors are compressed
into short codes and the expensive distance is replaced by a fast
approximate one computed from per-subspace lookup tables.

This module implements classic PQ:

* **training**: split the d dimensions into ``num_subspaces`` contiguous
  blocks and run k-means (``2^code_bits`` centroids) per block;
* **encoding**: each vector becomes ``num_subspaces`` centroid ids;
* **ADC search** (asymmetric distance computation): per query, build a
  ``(num_subspaces, 2^code_bits)`` table of query-block-to-centroid
  distances; a database vector's approximate distance is then a sum of
  ``num_subspaces`` table lookups.

It rounds out the substrate trio (graphs / LSH / quantization), and —
because it only sees vector geometry — also works over DCPE ciphertexts
as a compressed filter backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.ivf import kmeans

__all__ = ["PQParams", "ProductQuantizer", "PQIndex"]


@dataclass(frozen=True)
class PQParams:
    """Product-quantizer configuration.

    Attributes
    ----------
    num_subspaces:
        ``m`` — how many blocks the dimensions are split into; must
        divide the dimensionality.
    code_bits:
        Bits per subspace code (``2^code_bits`` centroids each).
    train_iterations:
        k-means iterations per subspace.
    """

    num_subspaces: int = 8
    code_bits: int = 4
    train_iterations: int = 8

    def __post_init__(self) -> None:
        if self.num_subspaces < 1:
            raise ParameterError(f"num_subspaces must be >= 1, got {self.num_subspaces}")
        if not 1 <= self.code_bits <= 16:
            raise ParameterError(f"code_bits must be in [1, 16], got {self.code_bits}")
        if self.train_iterations < 1:
            raise ParameterError(
                f"train_iterations must be >= 1, got {self.train_iterations}"
            )

    @property
    def codebook_size(self) -> int:
        """Centroids per subspace."""
        return 1 << self.code_bits


class ProductQuantizer:
    """A trained product quantizer.

    Parameters
    ----------
    training_vectors:
        ``(n, d)`` sample to train the codebooks on.
    params:
        Quantizer configuration; ``num_subspaces`` must divide ``d``.
    rng:
        Randomness for k-means.
    """

    def __init__(
        self,
        training_vectors: np.ndarray,
        params: PQParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        training_vectors = np.asarray(training_vectors, dtype=np.float64)
        if training_vectors.ndim != 2 or training_vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {training_vectors.shape}"
            )
        self._params = params if params is not None else PQParams()
        dim = training_vectors.shape[1]
        if dim % self._params.num_subspaces != 0:
            raise ParameterError(
                f"num_subspaces {self._params.num_subspaces} must divide d={dim}"
            )
        self._dim = dim
        self._sub_dim = dim // self._params.num_subspaces
        rng = rng if rng is not None else np.random.default_rng()
        self._codebooks = []
        for block in range(self._params.num_subspaces):
            sub = training_vectors[:, self._slice(block)]
            centroids, _ = kmeans(
                sub, self._params.codebook_size, self._params.train_iterations, rng
            )
            self._codebooks.append(centroids)

    def _slice(self, block: int) -> slice:
        return slice(block * self._sub_dim, (block + 1) * self._sub_dim)

    @property
    def dim(self) -> int:
        """Full vector dimensionality."""
        return self._dim

    @property
    def params(self) -> PQParams:
        """Quantizer configuration."""
        return self._params

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Compress ``(n, d)`` vectors into ``(n, num_subspaces)`` codes."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[1] != self._dim:
            raise DimensionMismatchError(self._dim, vectors.shape[-1], what="vectors")
        codes = np.empty((vectors.shape[0], self._params.num_subspaces), dtype=np.uint16)
        for block, codebook in enumerate(self._codebooks):
            sub = vectors[:, self._slice(block)]
            diffs = sub[:, None, :] - codebook[None, :, :]
            dists = np.einsum("nkd,nkd->nk", diffs, diffs)
            codes[:, block] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != self._params.num_subspaces:
            raise ParameterError(f"bad code shape {codes.shape}")
        output = np.empty((codes.shape[0], self._dim))
        for block, codebook in enumerate(self._codebooks):
            output[:, self._slice(block)] = codebook[codes[:, block]]
        return output

    def distance_table(self, query: np.ndarray) -> np.ndarray:
        """ADC table: squared distance from each query block to each centroid."""
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._dim:
            raise DimensionMismatchError(self._dim, query.shape[-1], what="query")
        table = np.empty((self._params.num_subspaces, self._params.codebook_size))
        for block, codebook in enumerate(self._codebooks):
            diffs = codebook - query[self._slice(block)]
            table[block] = np.einsum("kd,kd->k", diffs, diffs)
        return table

    def adc_distances(self, table: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Approximate squared distances via table lookups (the fast path)."""
        block_index = np.arange(self._params.num_subspaces)
        return table[block_index[None, :], codes].sum(axis=1)


class PQIndex:
    """Exhaustive-ADC index: every vector scanned, distances via lookups.

    The classic "PQ scan" baseline — compressed storage, approximate
    distances, no graph.  Search cost is O(n * num_subspaces) lookups.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        params: PQParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._quantizer = ProductQuantizer(vectors, params, rng)
        self._codes = self._quantizer.encode(np.asarray(vectors, dtype=np.float64))

    @property
    def quantizer(self) -> ProductQuantizer:
        """The trained quantizer."""
        return self._quantizer

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return int(self._codes.shape[0])

    @property
    def code_bytes_per_vector(self) -> int:
        """Compressed size (2 bytes per subspace code as stored)."""
        return 2 * self._quantizer.params.num_subspaces

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """ADC scan; returns approximate ``(ids, squared_distances)``."""
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        table = self._quantizer.distance_table(query)
        dists = self._quantizer.adc_distances(table, self._codes)
        k = min(k, self.size)
        nearest = np.argpartition(dists, k - 1)[:k]
        order = np.argsort(dists[nearest], kind="stable")
        ids = nearest[order]
        return ids.astype(np.int64), dists[ids]
