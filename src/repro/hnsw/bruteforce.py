"""Exact k-NN by linear scan — the recall ground truth.

Every Recall@k number in the paper is measured against exact neighbors
(Section VII, "Performance Metrics"); this module provides the reference
implementation plus a tiny index-shaped wrapper so the evaluation harness
can treat exact search like any other method.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import (
    gemm_topk_preselect,
    pairwise_squared_distances,
    squared_distances_to_many,
)
from repro.hnsw.graph import SearchStats, sorted_id_array

__all__ = ["exact_knn", "BruteForceIndex"]


def exact_knn(
    vectors: np.ndarray, query: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbors of ``query`` among the rows of ``vectors``.

    Returns ``(ids, squared_distances)`` sorted nearest-first.  Uses
    ``argpartition`` so the cost is O(n + k log k) beyond the distance pass.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    vectors = np.asarray(vectors, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if vectors.ndim != 2:
        raise ParameterError(f"vectors must be 2-D, got shape {vectors.shape}")
    if query.shape[-1] != vectors.shape[1]:
        raise DimensionMismatchError(vectors.shape[1], query.shape[-1], what="query")
    k = min(k, vectors.shape[0])
    dists = squared_distances_to_many(query, vectors)
    nearest = np.argpartition(dists, k - 1)[:k]
    order = np.argsort(dists[nearest], kind="stable")
    ids = nearest[order]
    return ids.astype(np.int64), dists[ids]


class BruteForceIndex:
    """Linear-scan index with the same ``search`` signature as HNSW."""

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {vectors.shape}"
            )
        self._vectors = vectors
        self._deleted: set[int] = set()
        # Row-norm cache for the batched GEMM path; keyed by array
        # identity so the vstack in insert() invalidates it naturally.
        self._norms: np.ndarray | None = None
        self._norms_for: np.ndarray | None = None

    @classmethod
    def from_state(
        cls, vectors: np.ndarray, deleted: set[int] | None = None
    ) -> "BruteForceIndex":
        """Reconstruct an index (used by :mod:`repro.core.persistence`)."""
        index = cls(vectors)
        index._deleted = set(deleted) if deleted is not None else set()
        return index

    @property
    def size(self) -> int:
        """Number of indexed vectors, including any deleted slots."""
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._vectors.shape[1])

    @property
    def vectors(self) -> np.ndarray:
        """The indexed vectors, including any deleted slots."""
        return self._vectors

    def is_deleted(self, node: int) -> bool:
        """Whether ``node`` has been tombstoned."""
        return node in self._deleted

    def deleted_ids(self) -> np.ndarray:
        """Sorted tombstoned ids as int64 (see :func:`sorted_id_array`)."""
        return sorted_id_array(self._deleted)

    def insert(self, vector: np.ndarray) -> int:
        """Append one vector, returning its id."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.ndim != 1 or vector.shape[0] != self.dim:
            raise DimensionMismatchError(self.dim, vector.shape[-1])
        self._vectors = np.vstack([self._vectors, vector])
        return self.size - 1

    def mark_deleted(self, node: int) -> None:
        """Tombstone ``node`` so scans skip it."""
        if not 0 <= node < self.size:
            raise IndexError(f"node {node} out of range")
        self._deleted.add(node)

    def search(
        self,
        query: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats: "SearchStats | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact search; see :func:`exact_knn`.

        ``ef_search`` is accepted for interface parity with the graph
        indexes and ignored — a linear scan has no beam.
        """
        ids, dists = exact_knn(self._vectors, query, k + len(self._deleted))
        if stats is not None:
            stats.distance_computations += self.size
            stats.hops += 1
        if self._deleted:
            keep = np.array([i not in self._deleted for i in ids.tolist()])
            ids, dists = ids[keep], dists[keep]
        return ids[:k], dists[:k]

    def _row_norms(self) -> np.ndarray:
        vectors = self._vectors
        if self._norms_for is not vectors:
            self._norms = np.einsum("ij,ij->i", vectors, vectors)
            self._norms_for = vectors
        return self._norms

    def search_batch(
        self,
        queries: np.ndarray,
        k: int,
        ef_search: int | None = None,
        stats_list: "list[SearchStats] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """Batched exact search: one GEMM for the whole micro-batch.

        Bit-identical to looping :meth:`search` per query — the GEMM
        scores only preselect candidates whose distances are then
        recomputed with the per-row kernel, and any query whose
        selection has a tie (or an unsafe boundary) falls back to the
        per-query path outright.
        """
        if k <= 0:
            raise ParameterError(f"k must be positive, got {k}")
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise DimensionMismatchError(self.dim, queries.shape[-1], what="queries")
        kk = min(k + len(self._deleted), self.size)
        approx = pairwise_squared_distances(
            queries, self._vectors, b_norms=self._row_norms()
        )
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for row in range(queries.shape[0]):
            query = queries[row]
            selected = gemm_topk_preselect(
                approx[row],
                kk,
                lambda cand, q=query: squared_distances_to_many(q, self._vectors[cand]),
                candidate_cap=4 * kk + 64,
            )
            if selected is None:
                ids, dists = exact_knn(self._vectors, query, k + len(self._deleted))
            else:
                ids, dists = selected[0].astype(np.int64), selected[1]
            stats = stats_list[row] if stats_list is not None else None
            if stats is not None:
                stats.distance_computations += self.size
                stats.hops += 1
            if self._deleted:
                keep = np.array([i not in self._deleted for i in ids.tolist()])
                ids, dists = ids[keep], dists[keep]
            out.append((ids[:k], dists[:k]))
        return out
