"""Exact k-NN by linear scan — the recall ground truth.

Every Recall@k number in the paper is measured against exact neighbors
(Section VII, "Performance Metrics"); this module provides the reference
implementation plus a tiny index-shaped wrapper so the evaluation harness
can treat exact search like any other method.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import DimensionMismatchError, ParameterError
from repro.hnsw.distance import squared_distances_to_many

__all__ = ["exact_knn", "BruteForceIndex"]


def exact_knn(
    vectors: np.ndarray, query: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exact k nearest neighbors of ``query`` among the rows of ``vectors``.

    Returns ``(ids, squared_distances)`` sorted nearest-first.  Uses
    ``argpartition`` so the cost is O(n + k log k) beyond the distance pass.
    """
    if k <= 0:
        raise ParameterError(f"k must be positive, got {k}")
    vectors = np.asarray(vectors, dtype=np.float64)
    query = np.asarray(query, dtype=np.float64)
    if vectors.ndim != 2:
        raise ParameterError(f"vectors must be 2-D, got shape {vectors.shape}")
    if query.shape[-1] != vectors.shape[1]:
        raise DimensionMismatchError(vectors.shape[1], query.shape[-1], what="query")
    k = min(k, vectors.shape[0])
    dists = squared_distances_to_many(query, vectors)
    nearest = np.argpartition(dists, k - 1)[:k]
    order = np.argsort(dists[nearest], kind="stable")
    ids = nearest[order]
    return ids.astype(np.int64), dists[ids]


class BruteForceIndex:
    """Linear-scan index with the same ``search`` signature as HNSW."""

    def __init__(self, vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim != 2 or vectors.shape[0] == 0:
            raise ParameterError(
                f"need a non-empty (n, d) array, got shape {vectors.shape}"
            )
        self._vectors = vectors

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Vector dimensionality."""
        return int(self._vectors.shape[1])

    def search(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Exact search; see :func:`exact_knn`."""
        return exact_knn(self._vectors, query, k)
