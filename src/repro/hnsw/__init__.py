"""Proximity-graph ANN substrates built from scratch.

The paper's index is an HNSW graph (Malkov & Yashunin, TPAMI 2020) built
over DCPE ciphertexts.  This subpackage provides:

* :mod:`repro.hnsw.graph` — hierarchical navigable small world graphs,
* :mod:`repro.hnsw.nsg` — a flat navigating-spreading-out-style graph
  (the paper notes the index can substitute other proximity graphs),
* :mod:`repro.hnsw.ivf` — IVF-Flat with a from-scratch k-means quantizer
  (the inverted-file family of Sections I/VIII),
* :mod:`repro.hnsw.pq` — product quantization with ADC search (the
  embedding-based family of Section VIII),
* :mod:`repro.hnsw.heap` — bounded heaps, including a comparison-oracle
  max-heap for DCE's comparison-only refine phase,
* :mod:`repro.hnsw.bruteforce` — exact k-NN for ground truth,
* :mod:`repro.hnsw.distance` — squared-Euclidean distance kernels.
"""

from repro.hnsw.bruteforce import BruteForceIndex, exact_knn
from repro.hnsw.distance import (
    squared_distance,
    squared_distances_to_many,
    pairwise_squared_distances,
)
from repro.hnsw.graph import BUILD_MODES, HNSWIndex, HNSWParams, SearchStats
from repro.hnsw.heap import BoundedMaxHeap, ComparisonMaxHeap
from repro.hnsw.ivf import IVFFlatIndex, IVFParams, kmeans
from repro.hnsw.nsg import NSGIndex, NSGParams
from repro.hnsw.pq import PQIndex, PQParams, ProductQuantizer

__all__ = [
    "BUILD_MODES",
    "HNSWIndex",
    "HNSWParams",
    "SearchStats",
    "NSGIndex",
    "NSGParams",
    "IVFFlatIndex",
    "IVFParams",
    "kmeans",
    "PQIndex",
    "PQParams",
    "ProductQuantizer",
    "BruteForceIndex",
    "exact_knn",
    "BoundedMaxHeap",
    "ComparisonMaxHeap",
    "squared_distance",
    "squared_distances_to_many",
    "pairwise_squared_distances",
]
