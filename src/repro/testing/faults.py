"""Unified count-to-Nth-call fault injection.

The persistence suite's crash sweep established the pattern: an
operation's failure surface is a *finite* list of primitive calls, so
"a fault at any point" means counting calls once and then re-running
with a fault armed at each index.  This module lifts the counting core
out of the filesystem layer so every fault surface in the stack speaks
the same language:

* :class:`CallTrigger` — the counting core: fire at call N (1-based),
  once or on every call from N on.
* :class:`FaultySocket` — a socket proxy that drops, delays, or tears
  the connection at the Nth sent frame, for wire-level chaos.
* :class:`FaultyExecute` — wraps a scheduler execute hook so the Nth
  dispatched batch raises :class:`InjectedFault`.
* :func:`arm_plane_worker_kill` — kills a
  :class:`~repro.core.plane.ProcessDataPlane` worker right before the
  Nth filter batch, for self-healing tests.

The filesystem-side ``FaultyOps`` (``tests/persistence/faultfs.py``)
builds on the same trigger; :class:`InjectedFault` is the one exception
type every injected failure raises, so "production code never catches
it" stays checkable in a single place.
"""

from __future__ import annotations

import socket as socket_module
import time

__all__ = [
    "InjectedFault",
    "CallTrigger",
    "FaultySocket",
    "FaultyExecute",
    "arm_plane_worker_kill",
]


class InjectedFault(RuntimeError):
    """The simulated failure — never caught by production code."""


class CallTrigger:
    """Fires at the Nth observed call (1-based).

    With ``repeat=False`` (the default) the trigger fires exactly once,
    at call ``fire_at`` — the crash-sweep semantics.  With
    ``repeat=True`` it fires on every call from ``fire_at`` on — a
    persistent fault rather than a transient one.
    """

    def __init__(self, fire_at: int, repeat: bool = False) -> None:
        if fire_at < 1:
            raise ValueError(f"fire_at must be >= 1, got {fire_at}")
        self.fire_at = int(fire_at)
        self.repeat = bool(repeat)
        self.calls = 0
        self.fired = 0

    def observe(self) -> bool:
        """Count one call; ``True`` when the fault should fire now."""
        self.calls += 1
        if self.calls == self.fire_at or (
            self.repeat and self.calls > self.fire_at
        ):
            self.fired += 1
            return True
        return False


class FaultySocket:
    """A socket proxy that misbehaves at the Nth ``sendall``.

    The codec sends exactly one ``sendall`` per frame, so the trigger
    counts *frames* (the HELLO handshake counts too).  Three actions:

    * ``"drop"`` — the frame's bytes silently vanish (a lost packet the
      peer never sees; the caller's own timeout must catch it).
    * ``"delay"`` — sleep ``delay_seconds`` first, then send (a stalled
      link; frame deadlines must catch it).
    * ``"close"`` — tear the real connection down mid-request and raise
      ``ConnectionResetError``, exactly what a dying peer looks like.

    Every other attribute proxies to the wrapped socket, so the proxy
    drops in anywhere a real socket is accepted.
    """

    def __init__(
        self,
        sock: socket_module.socket,
        trigger: CallTrigger,
        action: str = "close",
        delay_seconds: float = 0.0,
        sleep=time.sleep,
    ) -> None:
        if action not in ("drop", "delay", "close"):
            raise ValueError(
                f"action must be drop / delay / close, got {action!r}"
            )
        self._sock = sock
        self.trigger = trigger
        self.action = action
        self.delay_seconds = float(delay_seconds)
        self._sleep = sleep

    def sendall(self, data) -> None:
        if not self.trigger.observe():
            self._sock.sendall(data)
            return
        if self.action == "drop":
            return
        if self.action == "delay":
            self._sleep(self.delay_seconds)
            self._sock.sendall(data)
            return
        try:
            self._sock.shutdown(socket_module.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()
        raise ConnectionResetError(
            f"injected connection close at frame {self.trigger.calls}"
        )

    def __getattr__(self, name):
        return getattr(self._sock, name)


class FaultyExecute:
    """Wraps a scheduler execute hook; the Nth batch raises.

    Keep a reference to the instance for the scheduler's lifetime — the
    scheduler holds its hooks weakly, so a garbage-collected wrapper
    reads as owner shutdown, not as a fault.
    """

    def __init__(self, execute, trigger: CallTrigger, exc_factory=None) -> None:
        self._execute = execute
        self.trigger = trigger
        self._exc_factory = exc_factory or (
            lambda: InjectedFault(
                f"execute faulted at batch {self.trigger.calls}"
            )
        )

    def __call__(self, *args, **kwargs):
        if self.trigger.observe():
            raise self._exc_factory()
        return self._execute(*args, **kwargs)


def arm_plane_worker_kill(plane, worker_index: int, trigger: CallTrigger):
    """Kill ``worker_index`` right before the Nth filter batch.

    Shadows ``plane.filter_batch`` on the instance; the kill happens
    *before* the batch runs, so the batch itself observes the death —
    the scenario the self-healing path must survive.  Returns ``plane``
    for chaining.
    """
    original = plane.filter_batch

    def filter_batch(*args, **kwargs):
        if trigger.observe():
            plane.kill_worker(worker_index)
        return original(*args, **kwargs)

    plane.filter_batch = filter_batch
    return plane
