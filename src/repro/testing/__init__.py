"""Deterministic fault-injection helpers shared by tests and benches.

Shipped inside the package (rather than under ``tests/``) so the chaos
benchmark and external integration harnesses can inject the same faults
the test suite does.  Nothing here is imported by production code paths.
"""

from repro.testing.faults import (
    CallTrigger,
    FaultyExecute,
    FaultySocket,
    InjectedFault,
    arm_plane_worker_kill,
)

__all__ = [
    "CallTrigger",
    "FaultyExecute",
    "FaultySocket",
    "InjectedFault",
    "arm_plane_worker_kill",
]
