"""Shared bench-honesty helpers: environment stamping and grading.

Every ``BENCH_*.json`` writer stamps its payload with
:func:`bench_environment` so a recorded number can never be read out of
context: the host's ``cpu_count``, which ``executor`` mode produced the
figure, and — crucially — an explicit ``graded`` flag.  ``graded:
false`` says the run happened somewhere the bench's real speedup bar
was *not* applied (a CI runner or a core-starved container, where a
parallelism win physically cannot express itself) and only a sanity
floor was asserted; silently passing a softened bar and recording the
number as if it were graded is exactly the dishonesty this module
exists to remove.

:func:`is_graded` is the one definition of "this host gets the real
bar" shared by every bench, so the assertion grading and the recorded
flag cannot drift apart.
"""

import os

__all__ = ["bench_environment", "is_graded"]


def is_graded(min_cores: int = 4) -> bool:
    """Whether this host gets the bench's real (ungraded-down) perf bar.

    CI runners are shared and noisy; hosts under ``min_cores`` cores
    cannot express a parallel speedup at all.  Both get sanity floors,
    and their recorded numbers are flagged ``graded: false``.
    """
    if os.environ.get("CI"):
        return False
    return (os.cpu_count() or 1) >= min_cores


def bench_environment(executor: str = "threads", min_cores: int = 4) -> dict:
    """The honesty fields every ``BENCH_*.json`` payload must carry.

    ``executor`` names the execution mode that produced the figures
    (``"threads"`` / ``"processes"``); ``graded`` records whether the
    run's perf assertion used the real bar (see :func:`is_graded`).
    """
    return {
        "cpu_count": os.cpu_count(),
        "ci": bool(os.environ.get("CI")),
        "executor": executor,
        "graded": is_graded(min_cores),
    }
