"""Figure 5 — effect of Ratio_k (= k'/k) on search performance.

The paper sweeps Ratio_k in {1..128}: larger ratios raise the recall
ceiling (more candidates survive into the refine phase) and lower QPS
(more DCE comparisons).  We regenerate the same family of curves on the
Deep stand-in at the tuned beta and assert both trends.
"""

import time

import numpy as np

from benchmarks.conftest import K
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table

RATIOS = (1, 2, 4, 8, 16, 32, 64)
EF = 160


def test_fig5_report(deep_scheme, deep_workload, benchmark):
    """Print the Figure 5 series and benchmark one refine-enabled query."""
    dataset, truth = deep_workload
    encrypted = [deep_scheme.user.encrypt_query(q, K) for q in dataset.queries]

    rows = []
    recalls_by_ratio = {}
    for ratio in RATIOS:
        recalls = []
        latencies = []
        comparisons = []
        for i, query_ct in enumerate(encrypted):
            start = time.perf_counter()
            report = deep_scheme.server.answer(query_ct, ratio_k=ratio, ef_search=EF)
            latencies.append(time.perf_counter() - start)
            recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
            comparisons.append(report.refine_comparisons)
        mean_latency = float(np.mean(latencies))
        recalls_by_ratio[ratio] = float(np.mean(recalls))
        rows.append(
            [
                ratio,
                recalls_by_ratio[ratio],
                1.0 / mean_latency,
                mean_latency * 1e3,
                float(np.mean(comparisons)),
            ]
        )
    print()
    print(
        format_table(
            ["Ratio_k", "recall@10", "QPS", "latency_ms", "DCE comps"],
            rows,
            title=f"Figure 5 — Ratio_k sweep (efSearch={EF})",
        )
    )

    # Paper shape: recall ceiling grows with Ratio_k, cost grows too.
    assert recalls_by_ratio[RATIOS[-1]] >= recalls_by_ratio[RATIOS[0]]
    assert rows[-1][3] > rows[0][3] * 1.2  # latency strictly increases

    benchmark(deep_scheme.server.answer, encrypted[0], ratio_k=8, ef_search=EF)
