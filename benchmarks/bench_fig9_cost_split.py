"""Figure 9 — server-side vs user-side cost split at Recall@10 ~ 0.9.

The paper breaks each method's per-query cost into server compute and
user compute (user cost simulated on the server machine, as here) and
additionally reports that the whole PP-ANNS pipeline costs a small
multiple (3-7x) of plaintext HNSW at the same recall.  We regenerate
both: the per-method cost split table and the plaintext-multiple row.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BETA, BENCH_HNSW, K, N_QUERIES
from repro import PPANNS
from repro.baselines.pacm_ann import PACMANNBaseline
from repro.baselines.pri_ann import PRIANNBaseline
from repro.baselines.rs_sann import RSSANNBaseline
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.costmodel import SetupCost
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWIndex
from repro.lsh.e2lsh import E2LSHParams

N = 1200


@pytest.fixture(scope="module")
def fig9_setup():
    dataset = make_dataset("deep", num_vectors=N, num_queries=N_QUERIES,
                           rng=np.random.default_rng(91))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    # Data-driven LSH width: ~2.5x the typical 10-NN distance keeps bucket
    # recall high at the cost of large candidate sets — the regime the
    # paper describes for the LSH baselines.
    width = 2.5 * float(np.sqrt(truth.distances[:, -1]).mean())
    ours = PPANNS(
        dim=dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(92),
    ).fit(dataset.database)
    plain = HNSWIndex(dataset.dim, BENCH_HNSW, rng=np.random.default_rng(92)).build(
        dataset.database
    )
    rs_sann = RSSANNBaseline(
        dataset.dim,
        E2LSHParams(num_tables=16, hashes_per_table=6, bucket_width=width,
                    multiprobe=4),
        rng=np.random.default_rng(93),
    ).fit(dataset.database)
    pacm = PACMANNBaseline(dataset.dim, BENCH_HNSW, rng=np.random.default_rng(94)).fit(
        dataset.database
    )
    pri = PRIANNBaseline(
        dataset.dim,
        E2LSHParams(num_tables=16, hashes_per_table=6, bucket_width=width),
        bucket_capacity=192,
        rng=np.random.default_rng(95),
    ).fit(dataset.database)
    return dataset, truth, ours, plain, rs_sann, pacm, pri


def test_fig9_report(fig9_setup, benchmark):
    dataset, truth, ours, plain, rs_sann, pacm, pri = fig9_setup
    rows = []

    # --- ours: user = query encryption; server = Algorithm 2 ----------------
    recalls, user_s, server_s = [], [], []
    for i, query in enumerate(dataset.queries):
        start = time.perf_counter()
        encrypted = ours.user.encrypt_query(query, K)
        user_s.append(time.perf_counter() - start)
        start = time.perf_counter()
        report = ours.server.answer(encrypted, ratio_k=8, ef_search=160)
        server_s.append(time.perf_counter() - start)
        recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
    rows.append(
        [
            "PP-ANNS (ours)",
            float(np.mean(recalls)),
            float(np.mean(server_s)) * 1e3,
            float(np.mean(user_s)) * 1e3,
        ]
    )
    ours_mean = float(np.mean(server_s))

    # --- baselines -------------------------------------------------------------
    for label, method in (
        ("RS-SANN", lambda q: rs_sann.query_with_cost(q, K)),
        ("PACM-ANN", lambda q: pacm.query_with_cost(q, K, ef_search=60)),
        ("PRI-ANN", lambda q: pri.query_with_cost(q, K)),
    ):
        recalls, user_s, server_s = [], [], []
        for i, query in enumerate(dataset.queries):
            ids, cost = method(query)
            server_s.append(cost.server_seconds)
            user_s.append(cost.user_seconds)
            recalls.append(recall_at_k(ids, truth.for_query(i), K))
        rows.append(
            [
                label,
                float(np.mean(recalls)),
                float(np.mean(server_s)) * 1e3,
                float(np.mean(user_s)) * 1e3,
            ]
        )

    print()
    print(
        format_table(
            ["method", "recall@10", "server_ms", "user_ms"],
            rows,
            title="Figure 9 — cost split per query (user cost simulated on server)",
        )
    )

    # --- owner-side setup split (the build pipeline's BuildReport) ----------------
    # The seed lumped encryption and index construction into one number;
    # the split lets this cost table charge cryptographic work and
    # (parallelizable) construction work to different columns.
    setup = SetupCost.from_build_report(ours.server.index.build_report)
    assert setup.encrypt_seconds > 0 and setup.build_seconds > 0
    print(
        f"\nowner setup: encrypt {setup.encrypt_seconds:.2f}s + "
        f"build {setup.build_seconds:.2f}s = {setup.total_seconds:.2f}s "
        f"({setup.amortized_seconds(len(dataset.queries)) * 1e3:.1f} ms/query "
        f"amortized over this workload)"
    )

    # --- plaintext multiple (Section VII-B closing) --------------------------------
    start = time.perf_counter()
    for _ in range(3):
        for query in dataset.queries:
            plain.search(query, K, ef_search=160)
    plain_mean = (time.perf_counter() - start) / (3 * len(dataset.queries))
    multiple = ours_mean / plain_mean
    print(
        f"\nplaintext HNSW: {plain_mean * 1e3:.2f} ms/query -> "
        f"PP-ANNS costs {multiple:.1f}x plaintext (paper: 3-7x)"
    )

    # Paper shape: the user-refine baselines (RS-SANN, PRI-ANN) burn more
    # user-side time than our whole trapdoor generation; our user cost is
    # absolutely small; the encrypted/plaintext multiple stays a small
    # constant.  (PACM-ANN's pain is rounds, shown in Figure 7.)
    ours_user = rows[0][3]
    by_label = {row[0]: row for row in rows}
    assert by_label["RS-SANN"][3] > ours_user
    assert by_label["PRI-ANN"][3] > ours_user
    assert ours_user < 5.0  # ms; O(d^2) trapdoor only
    assert multiple < 25

    benchmark(plain.search, dataset.queries[0], K, 160)
