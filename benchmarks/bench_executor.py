"""Filter-phase throughput: process data plane vs the thread pool.

The tentpole claim of the process executor (:mod:`repro.core.plane`)
is that the filter phase — pure-Python graph walks over ``C_SAP``,
GIL-serialized under the thread pool — scales with cores once the
ciphertexts live in shared memory and each shard's walks run in their
own process.  This bench measures exactly that: a sharded HNSW index,
a ``filter_only`` batch (no refine, so the number isolates the phase
the plane exists for), swept over worker counts for both executors.

Every sweep point asserts the process answers are **bit-identical**
(ids and order) to the thread oracle — a speedup that changes answers
is a bug, not a result.

Writes the machine-readable ``BENCH_executor.json`` next to the repo
root, stamped with the honesty fields of :mod:`benchmarks.grading`.

Acceptance bar: on a **graded** host (≥4 cores, not CI) the process
executor at 4 workers must clear ≥2x the single-worker-thread filter
qps.  Core-starved containers and CI runners record their numbers with
``graded: false`` and assert only a sanity floor (the plane must not
be pathologically slow: per-batch cost is one pipe round trip, not a
respawn).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser

N = 4096
DIM = 64
K = 10
SHARDS = 4
N_QUERIES = 64
REPEATS = 3

#: Swept worker-process counts for the plane.
WORKER_GRID = (1, 2, 4)

#: The grid point the graded ≥2x bar applies to.
ACCEPTANCE_WORKERS = 4

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_executor.json"


def _workload(seed: int = 80):
    """A sharded HNSW index plus an encrypted filter_only batch."""
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N, DIM)) * 2.0
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0
    owner = DataOwner(DIM, beta=1.0, backend="hnsw", shards=SHARDS, rng=rng)
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=rng)
    batch = user.encrypt_queries(queries, K, mode="filter_only")
    return index, batch


def _thread_qps(server, batch):
    """Best-of-repeats filter_only qps on the thread path, plus the ids."""
    results = None
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = server.answer(batch)
        best = min(best, time.perf_counter() - start)
    return N_QUERIES / best, [result.ids for result in results]


def _process_qps(index, batch, workers, oracle_ids):
    """Best-of-repeats qps at ``workers`` processes; asserts bit-identity.

    The plane is built once outside the timed region — it is a
    long-lived resource amortized over a server's lifetime, so its
    spawn cost is reported separately, not folded into per-batch qps.
    """
    server = CloudServer(index, executor="processes", workers=workers)
    try:
        spawn_start = time.perf_counter()
        server.data_plane()
        spawn_seconds = time.perf_counter() - spawn_start
        best = float("inf")
        results = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            results = server.answer(batch)
            best = min(best, time.perf_counter() - start)
        for oracle, result in zip(oracle_ids, results):
            assert np.array_equal(oracle, result.ids), (
                f"process-executor ids diverged from the thread oracle "
                f"at workers={workers}"
            )
    finally:
        server.close()
    return N_QUERIES / best, spawn_seconds


def test_executor_filter_sweep():
    """Thread-vs-process filter sweep + JSON artifact + the graded bar."""
    index, batch = _workload()
    thread_server = CloudServer(index)
    thread_qps, oracle_ids = _thread_qps(thread_server, batch)

    rows = []
    speedups = {}
    if process_plane_available():
        for workers in WORKER_GRID:
            qps, spawn_seconds = _process_qps(index, batch, workers, oracle_ids)
            speedups[workers] = qps / thread_qps
            rows.append(
                {
                    "workers": workers,
                    "process_qps": qps,
                    "speedup_vs_threads": speedups[workers],
                    "plane_spawn_seconds": spawn_seconds,
                }
            )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "n": N,
                "dim": DIM,
                "k": K,
                "shards": SHARDS,
                "queries": N_QUERIES,
                "repeats": REPEATS,
                "mode": "filter_only",
                "filter_engine": thread_server.filter_engine,
                **bench_environment(executor="processes"),
                "process_plane_available": process_plane_available(),
                "thread_qps": thread_qps,
                "workers": rows,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(f"thread filter baseline: {thread_qps:.0f} QPS")
    for row in rows:
        print(
            f"processes x{row['workers']}: {row['process_qps']:7.0f} QPS "
            f"({row['speedup_vs_threads']:.2f}x threads, "
            f"spawn {row['plane_spawn_seconds'] * 1e3:.0f}ms)"
        )
    print(f"wrote {_RESULT_PATH.name}")

    if not process_plane_available():
        return  # recorded as unavailable; nothing to grade
    best = speedups[ACCEPTANCE_WORKERS]
    cores = os.cpu_count() or 1
    if is_graded():
        floor = 2.0
    else:
        # Ungraded hosts (CI, <4 cores) cannot express the parallel
        # win; the floor only catches a pathological plane (per-batch
        # respawn, copying ciphertexts through the pipe, ...).
        floor = 0.2
    assert best >= floor, (
        f"process-executor filter speedup {best:.2f}x below the {floor}x "
        f"bar at workers={ACCEPTANCE_WORKERS}, n={N}, d={DIM}, "
        f"shards={SHARDS} ({cores} cores, graded={is_graded()})"
    )
