"""Figure 4 — effect of DCPE beta on filter-phase search performance.

The paper sweeps beta per dataset and plots filter-only Recall@10 vs QPS:
beta = 0 (no noise) gives the highest recall ceiling; increasing beta
lowers the ceiling (more privacy, worse candidates).  We regenerate the
same series on the Deep stand-in with four beta values including 0,
sweeping ef_search for each curve, and assert the ceiling ordering.
"""

import numpy as np
import pytest

from benchmarks.conftest import BENCH_HNSW, K, N_QUERIES, N_VECTORS
from repro import PPANNS
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.plotting import render_curves
from repro.eval.reporting import format_curve
from repro.eval.runner import sweep_filter_only

BETAS = (0.0, 1.5, 3.0, 6.0)
EF_GRID = (10, 20, 40, 80, 160)


@pytest.fixture(scope="module")
def beta_curves():
    dataset = make_dataset("deep", num_vectors=N_VECTORS, num_queries=N_QUERIES,
                           rng=np.random.default_rng(41))
    truth_list = [
        ids for ids in compute_ground_truth(dataset.database, dataset.queries, K).ids
    ]
    curves = {}
    for beta in BETAS:
        scheme = PPANNS(
            dim=dataset.dim, beta=beta, hnsw_params=BENCH_HNSW,
            rng=np.random.default_rng(42),
        ).fit(dataset.database)
        curves[beta] = (
            scheme,
            sweep_filter_only(
                scheme, dataset.queries, truth_list, k=K, ef_grid=EF_GRID,
                label=f"beta = {beta}",
            ),
        )
    return dataset, curves


def test_fig4_report(beta_curves, benchmark):
    """Print the Figure 4 series and benchmark one filter-only query."""
    dataset, curves = beta_curves
    print()
    for beta, (_, curve) in curves.items():
        print(format_curve(curve, parameter_name="efSearch"))
        print()
    print(
        render_curves(
            [curve for _, curve in curves.values()],
            title="Figure 4 — filter-only recall vs QPS per beta (deep stand-in)",
        )
    )
    print()

    ceilings = {beta: curve.best_recall() for beta, (_, curve) in curves.items()}
    print("recall ceilings:", {b: round(c, 3) for b, c in ceilings.items()})

    # Paper shape: beta=0 has the highest ceiling; ceilings fall as beta grows.
    assert ceilings[0.0] == max(ceilings.values())
    assert ceilings[BETAS[-1]] <= ceilings[0.0]

    scheme, _ = curves[BETAS[1]]
    encrypted = scheme.user.encrypt_query(dataset.queries[0], K)
    benchmark(scheme.server.answer_filter_only, encrypted, ef_search=40)
