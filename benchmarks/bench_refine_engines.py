"""Refine engines: comparison-heap oracle loop vs. batched kernels.

The refine phase of Algorithm 2 costs ``O(d k' log k)`` comparisons per
query, and the ``heap`` reference engine pays a Python round trip into
``distance_comp`` for every one of them.  The ``vectorized`` engine
(``repro.core.refine``) gathers the candidates' ``C_DCE`` rows once,
folds the trapdoor into them, and batches each run of
reject-against-the-current-top comparisons into one pivot-vs-candidates
BLAS kernel — replaying the identical heap selection, so the ids are
bit-identical and the interpreter work shrinks to heap bookkeeping.

This bench isolates the refine stage: candidates come from an exact
plaintext top-k' (what a perfect filter would hand over), so the timing
contains nothing but engine work.  It sweeps an ``(n, d, k, ratio_k)``
grid and writes the machine-readable ``BENCH_refine.json`` next to the
repo root — the seed of the perf trajectory for the serving hot path.

Acceptance bar: at ``n=4096, d=128, k=10, ratio_k=8`` the vectorized
engine must beat the heap engine by ≥3x (relaxed on single-core /
heavily loaded CI hosts, mirroring ``bench_sharding.py``).
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.dce import DCEScheme
from repro.core.refine import REFINE_ENGINES
from repro.eval.reporting import format_table

N_QUERIES = 24
REPEATS = 5

#: The swept ``(n, d, k, ratio_k)`` grid; the last entry is the
#: acceptance-bar configuration from the issue.
GRID = (
    (1024, 32, 10, 4),
    (2048, 64, 20, 8),
    (4096, 128, 10, 8),
)

#: The configuration the ≥3x assertion applies to.
ACCEPTANCE = (4096, 128, 10, 8)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_refine.json"


def _refine_workload(n: int, d: int, k_prime: int, seed: int = 50):
    """DCE database, per-query trapdoors, and exact top-k' candidate sets."""
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((n, d)) * 2.0
    queries = rng.standard_normal((N_QUERIES, d)) * 2.0
    scheme = DCEScheme(d, rng=rng)
    encrypted = scheme.encrypt_database(database)
    trapdoors = [scheme.trapdoor(query) for query in queries]
    candidates = []
    for query in queries:
        dists = ((database - query) ** 2).sum(axis=1)
        top = np.argpartition(dists, k_prime - 1)[:k_prime]
        candidates.append(top[np.argsort(dists[top], kind="stable")].astype(np.int64))
    return encrypted, trapdoors, candidates


def _engine_seconds(engine, encrypted, trapdoors, candidates, k):
    """(median, best) over repeats of the all-queries refine wall clock.

    The JSON artifact records the median (the representative number);
    the speedup assertion uses the best so a single scheduler hiccup on
    a loaded CI host cannot fail the bar.
    """
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for trapdoor, ids in zip(trapdoors, candidates):
            engine.refine(encrypted, trapdoor, ids, k)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples)), float(min(samples))


def test_refine_engine_grid():
    """Heap vs vectorized across the grid; JSON artifact + speedup bar."""
    rows = []
    configs = []
    speedups = {}
    for n, d, k, ratio_k in GRID:
        k_prime = ratio_k * k
        encrypted, trapdoors, candidates = _refine_workload(n, d, k_prime)
        medians = {}
        bests = {}
        ids_by_engine = {}
        for name, engine in REFINE_ENGINES.items():
            medians[name], bests[name] = _engine_seconds(
                engine, encrypted, trapdoors, candidates, k
            )
            ids_by_engine[name] = [
                engine.refine(encrypted, trapdoor, ids, k).ids
                for trapdoor, ids in zip(trapdoors, candidates)
            ]
        for heap_ids, vec_ids in zip(
            ids_by_engine["heap"], ids_by_engine["vectorized"]
        ):
            assert np.array_equal(heap_ids, vec_ids), (
                f"engines diverged at n={n}, d={d}, k={k}, ratio_k={ratio_k}"
            )
        speedup = (
            bests["heap"] / bests["vectorized"]
            if bests["vectorized"] > 0
            else float("inf")
        )
        speedups[(n, d, k, ratio_k)] = speedup
        configs.append(
            {
                "n": n,
                "d": d,
                "k": k,
                "ratio_k": ratio_k,
                "k_prime": k_prime,
                "engines": {
                    name: {
                        "median_seconds": medians[name],
                        "best_seconds": bests[name],
                    }
                    for name in medians
                },
                "speedup": speedup,
            }
        )
        rows.append(
            [
                n,
                d,
                k,
                ratio_k,
                medians["heap"] * 1e3 / N_QUERIES,
                medians["vectorized"] * 1e3 / N_QUERIES,
                speedup,
            ]
        )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "queries": N_QUERIES,
                "repeats": REPEATS,
                **bench_environment(executor="threads"),
                "configs": configs,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(
        format_table(
            ["n", "d", "k", "ratio_k", "heap ms/q", "vectorized ms/q", "speedup"],
            rows,
            title=f"refine engines, q={N_QUERIES}, median of {REPEATS} repeats",
        )
    )
    print(f"wrote {_RESULT_PATH.name}")

    # The batched kernel must pay for itself at serving-path sizes.
    # Mirroring bench_sharding.py, the bar is guarded: shared CI
    # runners (CI env var set) only check that the vectorized engine is
    # not slower — their multi-tenant clocks are too noisy for a perf
    # bar — while real hosts assert a floor graded by core count (the
    # win is interpreter dispatch, not parallelism, but 1-core boxes
    # are typically also the throttled ones).
    best = speedups[ACCEPTANCE]
    cores = os.cpu_count() or 1
    if is_graded():
        floor = 3.0
    elif os.environ.get("CI"):
        floor = 1.0
    else:
        floor = 2.2 if cores >= 2 else 1.8
    assert best >= floor, (
        f"vectorized refine speedup {best:.2f}x below the {floor}x bar at "
        f"n={ACCEPTANCE[0]}, d={ACCEPTANCE[1]}, k={ACCEPTANCE[2]}, "
        f"ratio_k={ACCEPTANCE[3]} ({cores} cores)"
    )
