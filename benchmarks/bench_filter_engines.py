"""Filter engines: seed beam-search oracle vs. CSR / batched kernels.

The filter phase — k'-ANNS over the DCPE ciphertexts — dominates the
server's wall clock, and the seed implementation is a per-query Python
beam search over list-of-lists adjacency.  The ``vectorized`` engine
(``repro.core.filterengine``) walks a flat CSR snapshot of the graph
with an epoch-stamped visited array and whole-row numpy gathers, and on
the flat backends answers an entire micro-batch with one norm-cached
GEMM — replaying the oracle's decisions exactly, so ids, distances and
stats are bit-identical.

This bench isolates the filter stage: backends are built directly over
random "ciphertext" vectors (DCPE output is distributionally just a
scaled/perturbed cloud, and the engines never look past the backend
interface), so the timing contains nothing but engine work.  It sweeps
an ``(n, d, ef_search, backend)`` grid per engine plus the batched
multi-query path (``engine.search_batch`` — the call
``execute_batch`` actually drives: the graph backends' lockstep beam
search, the flat backends' norm-cached GEMM) and writes the
machine-readable ``BENCH_filter.json`` next to the repo root.

Acceptance bars (graded hosts — see ``benchmarks/grading.py``): the
vectorized engine's batched path must beat the heap engine by ≥2x at
``n=4096, d=64, ef_search=128`` on the HNSW backend, and the batched
brute-force path must beat the per-query oracle loop by ≥3x at batch
size 32.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.backends import build_backend
from repro.core.filterengine import FILTER_ENGINES
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWParams, SearchStats

N_QUERIES = 24
REPEATS = 5
K_PRIME = 32
BATCH_SIZE = 32

#: The swept ``(n, d, ef_search, backend)`` grid; the hnsw entry at
#: ``(4096, 64, 128)`` is the acceptance-bar configuration.
GRID = (
    (1024, 32, 64, "hnsw"),
    (2048, 64, 64, "nsg"),
    (4096, 64, 128, "hnsw"),
    (4096, 64, 128, "ivf"),
)

#: The configuration the ≥2x batched assertion applies to.
ACCEPTANCE = (4096, 64, 128, "hnsw")

#: Backends whose ``search_batch`` is a genuinely batched kernel
#: (lockstep beam search on the graphs, one GEMM on the flat backends);
#: the hnsw entry carries the ≥2x and the bruteforce entry the ≥3x
#: acceptance bar.
BATCHED_GRID = (
    (4096, 64, 128, "hnsw"),
    (4096, 64, 128, "nsg"),
    (4096, 64, None, "bruteforce"),
    (4096, 64, None, "ivf"),
)

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_filter.json"


def _build(kind: str, n: int, d: int, seed: int = 60):
    """A filter backend over random ciphertext-like vectors + queries."""
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, d)) * 2.0
    queries = rng.standard_normal((N_QUERIES, d)) * 2.0
    params = HNSWParams(m=8, ef_construction=64) if kind == "hnsw" else None
    build_mode = "bulk" if kind == "hnsw" else "sequential"
    backend = build_backend(
        kind, vectors, rng=np.random.default_rng(seed + 1),
        params=params, build_mode=build_mode,
    )
    return backend, queries


def _engine_seconds(engine, backend, queries, ef_search):
    """(median, best) over repeats of the all-queries filter wall clock.

    The JSON artifact records the median (the representative number);
    the speedup assertion uses the best so a single scheduler hiccup on
    a loaded CI host cannot fail the bar.
    """
    samples = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        for row in range(queries.shape[0]):
            engine.search(backend, queries[row], K_PRIME, ef_search=ef_search)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples)), float(min(samples))


def _assert_identical(backend, queries, ef_search):
    """Every engine answer must be bit-identical to the heap oracle."""
    for row in range(queries.shape[0]):
        answers = {}
        for name, engine in FILTER_ENGINES.items():
            stats = SearchStats()
            ids, dists = engine.search(
                backend, queries[row], K_PRIME, ef_search=ef_search, stats=stats
            )
            answers[name] = (ids, dists, stats)
        ids_h, dists_h, stats_h = answers["heap"]
        ids_v, dists_v, stats_v = answers["vectorized"]
        assert np.array_equal(ids_h, ids_v), f"ids diverged on query {row}"
        assert np.array_equal(dists_h, dists_v)
        assert stats_h.distance_computations == stats_v.distance_computations
        assert stats_h.hops == stats_v.hops


def test_filter_engine_grid():
    """Heap vs vectorized across the grid; JSON artifact + speedup bars."""
    rows = []
    configs = []
    speedups = {}
    for n, d, ef_search, kind in GRID:
        backend, queries = _build(kind, n, d)
        _assert_identical(backend, queries, ef_search)
        medians = {}
        bests = {}
        for name, engine in FILTER_ENGINES.items():
            medians[name], bests[name] = _engine_seconds(
                engine, backend, queries, ef_search
            )
        speedup = (
            bests["heap"] / bests["vectorized"]
            if bests["vectorized"] > 0
            else float("inf")
        )
        speedups[(n, d, ef_search, kind)] = speedup
        configs.append(
            {
                "n": n,
                "d": d,
                "ef_search": ef_search,
                "backend": kind,
                "k_prime": K_PRIME,
                "engines": {
                    name: {
                        "median_seconds": medians[name],
                        "best_seconds": bests[name],
                    }
                    for name in medians
                },
                "speedup": speedup,
            }
        )
        rows.append(
            [
                n,
                d,
                ef_search,
                kind,
                medians["heap"] * 1e3 / N_QUERIES,
                medians["vectorized"] * 1e3 / N_QUERIES,
                speedup,
            ]
        )

    # The batched multi-query path — the call ``execute_batch``
    # actually drives: lockstep beam search on the graph backends, one
    # GEMM per micro-batch on the flat ones, vs the heap engine's
    # per-query oracle loop.  Samples interleave the engines so drift
    # on a noisy host hits both columns alike.
    batched_rows = []
    batched_configs = []
    batched_speedups = {}
    for n, d, ef_search, kind in BATCHED_GRID:
        backend, _ = _build(kind, n, d)
        batch = np.random.default_rng(61).standard_normal((BATCH_SIZE, d)) * 2.0
        heap_out = FILTER_ENGINES["heap"].search_batch(
            backend, batch, K_PRIME, ef_search=ef_search
        )
        vec_out = FILTER_ENGINES["vectorized"].search_batch(
            backend, batch, K_PRIME, ef_search=ef_search
        )
        for (ids_h, dists_h), (ids_v, dists_v) in zip(heap_out, vec_out):
            assert np.array_equal(ids_h, ids_v), f"batched ids diverged on {kind}"
            assert np.array_equal(dists_h, dists_v)
        samples = {name: [] for name in FILTER_ENGINES}
        for _ in range(REPEATS):
            for name, engine in FILTER_ENGINES.items():
                start = time.perf_counter()
                engine.search_batch(backend, batch, K_PRIME, ef_search=ef_search)
                samples[name].append(time.perf_counter() - start)
        medians = {name: float(np.median(vals)) for name, vals in samples.items()}
        bests = {name: float(min(vals)) for name, vals in samples.items()}
        speedup = (
            bests["heap"] / bests["vectorized"]
            if bests["vectorized"] > 0
            else float("inf")
        )
        batched_speedups[kind] = speedup
        batched_configs.append(
            {
                "n": n,
                "d": d,
                "ef_search": ef_search,
                "backend": kind,
                "batch_size": BATCH_SIZE,
                "k_prime": K_PRIME,
                "engines": {
                    name: {
                        "median_seconds": medians[name],
                        "best_seconds": bests[name],
                    }
                    for name in medians
                },
                "speedup": speedup,
            }
        )
        batched_rows.append(
            [
                n,
                d,
                kind,
                medians["heap"] * 1e3 / BATCH_SIZE,
                medians["vectorized"] * 1e3 / BATCH_SIZE,
                speedup,
            ]
        )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "queries": N_QUERIES,
                "repeats": REPEATS,
                "k_prime": K_PRIME,
                **bench_environment(executor="threads"),
                "configs": configs,
                "batched": batched_configs,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(
        format_table(
            ["n", "d", "ef", "backend", "heap ms/q", "vectorized ms/q", "speedup"],
            rows,
            title=f"filter engines, q={N_QUERIES}, median of {REPEATS} repeats",
        )
    )
    print(
        format_table(
            ["n", "d", "backend", "heap ms/q", "vectorized ms/q", "speedup"],
            batched_rows,
            title=f"batched filter path, batch={BATCH_SIZE}",
        )
    )
    print(f"wrote {_RESULT_PATH.name}")

    # Mirroring bench_refine_engines.py, the bars are guarded: shared
    # CI runners only check that the vectorized engine is not slower —
    # their multi-tenant clocks are too noisy for a perf bar — while
    # real hosts assert a floor graded by core count (the win is
    # interpreter dispatch, not parallelism, but 1-core boxes are
    # typically also the throttled ones, and the lockstep fusion's
    # round-level numpy calls amortize less on them).  The per-query
    # grid above is informational: serving batches queries, so the bars
    # sit on the batched path.
    cores = os.cpu_count() or 1
    if is_graded():
        floor, batched_floor = 2.0, 3.0
    elif os.environ.get("CI"):
        floor = batched_floor = 1.0
    else:
        floor = 1.5 if cores >= 2 else 1.25
        batched_floor = 2.0 if cores >= 2 else 1.5
    best = batched_speedups["hnsw"]
    assert best >= floor, (
        f"lockstep filter speedup {best:.2f}x below the {floor}x bar at "
        f"n={ACCEPTANCE[0]}, d={ACCEPTANCE[1]}, ef_search={ACCEPTANCE[2]}, "
        f"backend={ACCEPTANCE[3]}, batch={BATCH_SIZE} ({cores} cores)"
    )
    batched_best = batched_speedups["bruteforce"]
    assert batched_best >= batched_floor, (
        f"batched bruteforce speedup {batched_best:.2f}x below the "
        f"{batched_floor}x bar at batch={BATCH_SIZE} ({cores} cores)"
    )
