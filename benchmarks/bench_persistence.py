"""Incremental persistence: journal append vs full rewrite, live compaction.

The v4 journaled store's claim (``repro.core.journal``) is that a
mutation persists in time proportional to the *mutation*, not the
index: an insert/delete appends one checksummed delta segment where the
v2/v3 snapshot formats rewrite the whole compressed base.  This bench
measures both persistence paths over the same mutations at the
reference grid point (``n=4096, d=64``) and asserts the append is
**>=5x cheaper** than the full rewrite — an intentionally loose bar
(the measured gap is orders of magnitude; the assertion catches a
journal that silently degenerates into rewriting the base).

The second half exercises the *online* maintenance claim: a
:class:`~repro.serve.frontend.ServingFrontend` keeps answering while
``compact_index`` rebuilds the shard backends behind atomic swaps.  An
open-loop workload replays through the frontend with the compactor
running concurrently; every answer must match the sequential
pre-compaction answer set (the exact brute-force backend makes answer
sets a pure function of the live data, whichever side of the swap a
micro-batch lands on), and the reported p95 is the latency *under*
compaction.  No latency bar — shard rebuild cost is real work sharing
the CPU with serving and CI runners vary wildly — the acceptance is
zero dropped or incorrect answers.

Writes the machine-readable ``BENCH_persistence.json`` next to the
repo root, mirroring ``bench_serving.py`` / ``bench_build.py``.
"""

import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment
from repro.core.dce import DCECiphertext
from repro.core.journal import IndexJournal
from repro.core.maintenance import compact_index, delete_vector, insert_vector
from repro.core.persistence import save_index
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.serve import replay_open_loop

N = 4096
DIM = 64
K = 10
RATIO_K = 8

#: Mutations timed per persistence path.
N_MUTATIONS = 8

#: The append-vs-rewrite acceptance bar (deliberately loose; the
#: measured gap at n=4096 is orders of magnitude).
MIN_SPEEDUP = 5.0

#: Serving-under-compaction workload shape.
N_QUERIES = 32
N_DELETED = 200
SHARDS = 2

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_persistence.json"


def _fitted(seed: int = 70, shards: "int | None" = None):
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N, DIM)) * 2.0
    owner = DataOwner(DIM, beta=1.0, backend="bruteforce", shards=shards, rng=rng)
    return owner, owner.build_index(database), database


def _persistence_grid():
    """Per-mutation seconds: journal segment append vs full npz rewrite."""
    owner, index, _ = _fitted()
    mutation_rng = np.random.default_rng(71)
    with tempfile.TemporaryDirectory() as tmp:
        journal = IndexJournal.create(Path(tmp) / "store", index)
        snapshot = Path(tmp) / "snapshot.npz"

        append_seconds, rewrite_seconds = [], []
        for _ in range(N_MUTATIONS):
            # Mutate the live index first, then time each way of
            # persisting exactly that mutation.
            new_id = insert_vector(
                owner, index, mutation_rng.standard_normal(DIM)
            )
            ciphertext = DCECiphertext(
                index.dce_database.components[new_id], index.dce_database.key_id
            )
            start = time.perf_counter()
            journal.append_insert(
                index.sap_vectors[new_id],
                ciphertext,
                new_id,
                index.replay_level(new_id),
            )
            append_seconds.append(time.perf_counter() - start)

            start = time.perf_counter()
            save_index(snapshot, index)
            rewrite_seconds.append(time.perf_counter() - start)

        stats = journal.stats()
        return {
            "mutations": N_MUTATIONS,
            "append_seconds_mean": float(np.mean(append_seconds)),
            "rewrite_seconds_mean": float(np.mean(rewrite_seconds)),
            "speedup": float(np.mean(rewrite_seconds) / np.mean(append_seconds)),
            "segment_bytes_mean": stats.journal_bytes / stats.num_segments,
            "base_bytes": stats.base_bytes,
        }


def _serving_under_compaction():
    """Replay an open-loop workload while the shards compact live."""
    owner, index, database = _fitted(seed=72, shards=SHARDS)
    delete_rng = np.random.default_rng(73)
    victims = {
        int(v) for v in delete_rng.choice(N, size=N_DELETED, replace=False)
    }
    for victim in sorted(victims):
        delete_vector(index, victim)

    server = CloudServer(index, default_ratio_k=RATIO_K)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(74))
    queries = [
        database[i] + 0.01 for i in range(N_QUERIES) if i not in victims
    ][:N_QUERIES]
    encrypted = [user.encrypt_query(query, K) for query in queries]
    expected = [set(map(int, server.answer(q).ids)) for q in encrypted]

    compaction = {"seconds": None, "report": None}

    def compact_now():
        start = time.perf_counter()
        compaction["report"] = compact_index(
            index, rng=np.random.default_rng(75)
        )
        compaction["seconds"] = time.perf_counter() - start

    frontend = server.serving_frontend(
        max_batch_size=8,
        batch_window_seconds=0.002,
        max_queue_depth=max(1024, len(encrypted)),
    )
    with frontend:
        compactor = threading.Thread(target=compact_now)
        compactor.start()
        results, elapsed = replay_open_loop(frontend, encrypted, rate=None, seed=76)
        compactor.join()
        snapshot = frontend.metrics.snapshot()

    wrong = sum(
        set(map(int, result.ids)) != want
        for result, want in zip(results, expected)
    )
    dead = sum(bool(set(map(int, result.ids)) & victims) for result in results)
    report = compaction["report"]
    return {
        "queries": len(encrypted),
        "answered": len(results),
        "wrong_answers": wrong,
        "answers_with_dead_ids": dead,
        "deleted": N_DELETED,
        "shards": SHARDS,
        "tombstones_dropped": report.tombstones_dropped,
        "shards_compacted": report.shards_compacted,
        "compaction_seconds": compaction["seconds"],
        "served_qps": len(encrypted) / elapsed,
        "latency_p50": snapshot.latency_p50,
        "latency_p95": snapshot.latency_p95,
    }


def test_persistence_grid():
    """Append-vs-rewrite grid + live-compaction serving + JSON artifact."""
    persistence = _persistence_grid()
    serving = _serving_under_compaction()

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "n": N,
                "dim": DIM,
                "k": K,
                "ratio_k": RATIO_K,
                **bench_environment(executor="threads"),
                "persistence": persistence,
                "serving_under_compaction": serving,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(
        f"journal append {persistence['append_seconds_mean'] * 1e3:.2f}ms vs "
        f"full rewrite {persistence['rewrite_seconds_mean'] * 1e3:.1f}ms per "
        f"mutation ({persistence['speedup']:.0f}x, n={N}, d={DIM})"
    )
    print(
        f"serving under compaction: {serving['answered']}/{serving['queries']} "
        f"answered, {serving['wrong_answers']} wrong, p95 "
        f"{serving['latency_p95'] * 1e3:.1f}ms while dropping "
        f"{serving['tombstones_dropped']} tombstones in "
        f"{serving['compaction_seconds'] * 1e3:.1f}ms"
    )
    print(f"wrote {_RESULT_PATH.name}")

    assert persistence["speedup"] >= MIN_SPEEDUP, (
        f"journal append only {persistence['speedup']:.1f}x cheaper than a "
        f"full rewrite at n={N}, d={DIM} — below the {MIN_SPEEDUP}x bar"
    )
    assert serving["answered"] == serving["queries"]
    assert serving["wrong_answers"] == 0
    assert serving["answers_with_dead_ids"] == 0
    assert serving["tombstones_dropped"] == N_DELETED
