"""Figure 10 — scalability of the PP-ANNS scheme with database size.

The paper samples Sift1B/Deep1B at 25/50/75/100M vectors and shows
per-query latency growing sublinearly in n at fixed accuracy.  We sweep
scaled-down sizes with identical index parameters, report latency and
recall per size, and assert the sublinear growth (doubling n must not
double latency).
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BETA, BENCH_HNSW, K
from repro import PPANNS
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table

SIZES = (500, 1000, 2000, 4000)
N_QUERIES = 8
EF = 120


@pytest.fixture(scope="module")
def scalability_results():
    rows = []
    latencies = {}
    schemes = {}
    for n in SIZES:
        dataset = make_dataset("deep", num_vectors=n, num_queries=N_QUERIES,
                               rng=np.random.default_rng(101))
        truth = compute_ground_truth(dataset.database, dataset.queries, K)
        scheme = PPANNS(
            dim=dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
            rng=np.random.default_rng(102),
        ).fit(dataset.database)
        encrypted = [scheme.user.encrypt_query(q, K) for q in dataset.queries]
        recalls, query_seconds = [], []
        for i, query_ct in enumerate(encrypted):
            start = time.perf_counter()
            report = scheme.server.answer(query_ct, ratio_k=8, ef_search=EF)
            query_seconds.append(time.perf_counter() - start)
            recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
        mean_latency = float(np.mean(query_seconds))
        latencies[n] = mean_latency
        schemes[n] = (scheme, encrypted[0])
        rows.append([n, float(np.mean(recalls)), mean_latency * 1e3, 1.0 / mean_latency])
    return rows, latencies, schemes


def test_fig10_report(scalability_results, benchmark):
    rows, latencies, schemes = scalability_results
    print()
    print(
        format_table(
            ["n", "recall@10", "latency_ms", "QPS"],
            rows,
            title=f"Figure 10 — scalability (deep profile, ef={EF}, Ratio_k=8)",
        )
    )

    # Paper shape: latency grows sublinearly in n.
    small, large = SIZES[0], SIZES[-1]
    size_factor = large / small
    latency_factor = latencies[large] / latencies[small]
    print(
        f"n grew {size_factor:.0f}x, latency grew {latency_factor:.1f}x "
        "(sublinear, as in the paper)"
    )
    assert latency_factor < size_factor

    scheme, encrypted = schemes[SIZES[-1]]
    benchmark(scheme.server.answer, encrypted, ratio_k=8, ef_search=EF)
