"""Index construction: parallel shard builds + the bulk HNSW path.

The construction pipeline (``repro.core.build``) fans per-shard backend
builds out over the shared worker pool; backend construction spends its
time in numpy kernels (k-means pairwise distances, beam-search distance
blocks) that release the GIL, so shard builds overlap on multi-core
hosts.  Reproducibility is by construction: every shard builds from its
own ``SeedSequence``-spawned child generator, so the built index is
bit-identical at any ``build_workers`` setting.

This bench sweeps an ``(n, d, backend, shards)`` grid over a worker
grid, writes the machine-readable ``BENCH_build.json`` next to the repo
root, and enforces three acceptance bars:

* **speedup** — at the acceptance configuration (4 shards, the ``ivf``
  backend, whose k-means training is the most kernel-dominated build),
  parallel workers must beat the sequential shard-by-shard build by
  ≥2x on ≥4-core hosts (CPU-count/CI-graded guard, mirroring
  ``bench_refine_engines.py``);
* **bit-identity** — brute-force sharded builds are bit-identical to
  the sequential build at every worker count (and, by the
  SeedSequence-spawn contract, so is every other backend — the
  Hypothesis suite in ``tests/strategies/test_build_properties.py``
  covers the rest);
* **bulk reproducibility** — ``bulk`` HNSW builds are seed-reproducible
  and bit-identical to the ``sequential`` oracle from the same seed.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.build import build_shard_backends
from repro.core.sharding import assign_shards
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWIndex, HNSWParams
from repro.hnsw.ivf import IVFParams

WORKER_GRID = (1, 4)
SHARDS = 4

#: The swept ``(n, d, backend, params, repeats)`` grid; the ``ivf``
#: entry is the acceptance-bar configuration.
GRID = (
    (2048, 32, "bruteforce", None, 3),
    (900, 24, "hnsw", HNSWParams(m=8, ef_construction=40), 1),
    (16384, 96, "ivf", IVFParams(num_lists=64, train_iterations=10), 3),
)

#: The configuration the ≥2x assertion applies to.
ACCEPTANCE = (16384, 96, "ivf")

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_build.json"


def _owned(n: int) -> list[np.ndarray]:
    assignment = assign_shards(n, SHARDS, "round_robin")
    return [
        np.nonzero(assignment == shard)[0].astype(np.int64)
        for shard in range(SHARDS)
    ]


def _build_seconds(backend, vectors, owned, params, workers, repeats, seed):
    """(median, best) wall clock over repeats of the 4-shard build.

    Every repeat reseeds identically, so repeats measure the same work;
    the speedup assertion uses the best so one scheduler hiccup on a
    loaded host cannot fail the bar.
    """
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        build_shard_backends(
            backend,
            vectors,
            owned,
            rng=np.random.default_rng(seed),
            params=params,
            build_workers=workers,
        )
        samples.append(time.perf_counter() - start)
    return float(np.median(samples)), float(min(samples))


def _shard_states(backend, vectors, owned, params, workers, seed):
    """Per-shard persisted state, for bit-identity comparisons."""
    backends, _ = build_shard_backends(
        backend,
        vectors,
        owned,
        rng=np.random.default_rng(seed),
        params=params,
        build_workers=workers,
    )
    return [
        None if built is None else built.state_arrays() for built in backends
    ]


def _states_equal(a, b) -> bool:
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if (left is None) != (right is None):
            return False
        if left is None:
            continue
        if left.keys() != right.keys():
            return False
        if any(not np.array_equal(left[key], right[key]) for key in left):
            return False
    return True


def test_build_grid():
    """Worker sweep across the grid; JSON artifact + acceptance bars."""
    rows = []
    configs = []
    speedups = {}
    for n, d, backend, params, repeats in GRID:
        vectors = np.random.default_rng(70).standard_normal((n, d)) * 2.0
        owned = _owned(n)
        medians = {}
        bests = {}
        for workers in WORKER_GRID:
            medians[workers], bests[workers] = _build_seconds(
                backend, vectors, owned, params, workers, repeats, seed=71
            )
        speedup = (
            bests[1] / bests[WORKER_GRID[-1]]
            if bests[WORKER_GRID[-1]] > 0
            else float("inf")
        )
        speedups[(n, d, backend)] = speedup
        configs.append(
            {
                "n": n,
                "d": d,
                "backend": backend,
                "shards": SHARDS,
                "workers": {
                    str(workers): {
                        "median_seconds": medians[workers],
                        "best_seconds": bests[workers],
                    }
                    for workers in WORKER_GRID
                },
                "speedup": speedup,
            }
        )
        rows.append(
            [n, d, backend, medians[1] * 1e3, medians[WORKER_GRID[-1]] * 1e3,
             speedup]
        )

    # Bit-identity: the brute-force acceptance criterion, checked at
    # every worker setting against the sequential reference.
    n, d, backend, params, _ = GRID[0]
    vectors = np.random.default_rng(70).standard_normal((n, d)) * 2.0
    owned = _owned(n)
    reference = _shard_states(backend, vectors, owned, params, 1, seed=71)
    for workers in WORKER_GRID[1:] + (None,):
        assert _states_equal(
            reference, _shard_states(backend, vectors, owned, params, workers, 71)
        ), f"bruteforce sharded build diverged at build_workers={workers}"

    # Bulk HNSW: seed-reproducible, and bit-identical to the sequential
    # oracle from the same seed.
    hnsw_vectors = np.random.default_rng(72).standard_normal((400, 16)) * 2.0
    hnsw_params = HNSWParams(m=8, ef_construction=40)

    def hnsw_state(mode, seed):
        graph = HNSWIndex(16, hnsw_params, rng=np.random.default_rng(seed))
        graph.build(hnsw_vectors, mode=mode)
        levels, edges = graph.adjacency_arrays()
        return levels, edges, graph.entry_point

    bulk_a = hnsw_state("bulk", 73)
    bulk_b = hnsw_state("bulk", 73)
    sequential = hnsw_state("sequential", 73)
    for left, right, what in (
        (bulk_a, bulk_b, "bulk builds from one seed diverged"),
        (bulk_a, sequential, "bulk diverged from the sequential oracle"),
    ):
        assert left[2] == right[2], what
        assert np.array_equal(left[0], right[0]), what
        assert np.array_equal(left[1], right[1]), what

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "shards": SHARDS,
                "worker_grid": list(WORKER_GRID),
                **bench_environment(executor="threads"),
                "note": "build fan-out is thread-based (build_workers); "
                "the process data plane serves queries, not builds",
                "configs": configs,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(
        format_table(
            ["n", "d", "backend", "workers=1 ms", f"workers={WORKER_GRID[-1]} ms",
             "speedup"],
            rows,
            title=f"sharded builds, {SHARDS} shards, best-of-repeats",
        )
    )
    print(f"wrote {_RESULT_PATH.name}")

    # The parallel fan-out must pay for itself where cores exist.
    # Mirroring bench_refine_engines.py: shared CI runners only check
    # the fan-out is not pathological (multi-tenant clocks are too
    # noisy for a perf bar), real hosts assert a floor graded by core
    # count.  Single-core hosts can only interleave, so the bar there
    # is "thread overhead stays negligible".
    best = speedups[ACCEPTANCE]
    cores = os.cpu_count() or 1
    if is_graded():
        floor = 2.0
    elif os.environ.get("CI"):
        floor = 0.6
    else:
        floor = 1.2 if cores >= 2 else 0.6
    assert best >= floor, (
        f"parallel build speedup {best:.2f}x below the {floor}x bar at "
        f"n={ACCEPTANCE[0]}, d={ACCEPTANCE[1]}, backend={ACCEPTANCE[2]}, "
        f"shards={SHARDS} ({cores} cores)"
    )
