"""Figure 7 — PP-ANNS vs RS-SANN / PACM-ANN / PRI-ANN throughput.

The paper plots QPS at Recall@10 in {0.85, 0.9, 0.95} and reports up to
three orders of magnitude advantage for the proposed scheme.  The gap
comes from architecture: ours answers queries entirely server-side with
two tiny messages; RS-SANN ships whole candidate sets to the user;
PACM-ANN pays a network round per graph expansion; PRI-ANN downloads
padded PIR buckets.  We execute all four pipelines (real compute, 2-server
XOR PIR, real AES) and convert communication to latency with a 20 ms RTT
/ 100 Mbit/s network model, then print end-to-end QPS per method and the
speedup row.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BETA, BENCH_HNSW, K, N_QUERIES
from repro import PPANNS
from repro.baselines.pacm_ann import PACMANNBaseline
from repro.baselines.pri_ann import PRIANNBaseline
from repro.baselines.rs_sann import RSSANNBaseline
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.costmodel import NetworkModel
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table
from repro.lsh.e2lsh import E2LSHParams

N = 1200
NETWORK = NetworkModel()  # 20 ms RTT, 100 Mbit/s


@pytest.fixture(scope="module")
def fig7_setup():
    dataset = make_dataset("deep", num_vectors=N, num_queries=N_QUERIES,
                           rng=np.random.default_rng(71))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    # Data-driven LSH width: ~2.5x the typical 10-NN distance keeps bucket
    # recall high at the cost of large candidate sets — the regime the
    # paper describes for the LSH baselines.
    width = 2.5 * float(np.sqrt(truth.distances[:, -1]).mean())

    ours = PPANNS(
        dim=dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(72),
    ).fit(dataset.database)
    rs_sann = RSSANNBaseline(
        dataset.dim,
        E2LSHParams(num_tables=16, hashes_per_table=6, bucket_width=width,
                    multiprobe=4),
        rng=np.random.default_rng(73),
    ).fit(dataset.database)
    pacm = PACMANNBaseline(
        dataset.dim, BENCH_HNSW, rng=np.random.default_rng(74)
    ).fit(dataset.database)
    pri = PRIANNBaseline(
        dataset.dim,
        E2LSHParams(num_tables=16, hashes_per_table=6, bucket_width=width),
        bucket_capacity=192,
        rng=np.random.default_rng(75),
    ).fit(dataset.database)
    return dataset, truth, ours, rs_sann, pacm, pri


def test_fig7_report(fig7_setup, benchmark):
    """Compute QPS (the paper's Figure 7 metric) plus a network column.

    The paper "focuses on the server-side search performance"; its QPS is
    compute throughput, and the communication penalty of the interactive
    baselines shows up in Figure 9.  We report both: compute QPS (server +
    user work per query) and the modelled network seconds per query.
    """
    dataset, truth, ours, rs_sann, pacm, pri = fig7_setup

    results = {}

    # --- ours: all search compute is server-side --------------------------
    recalls, compute, network = [], [], []
    for i, query in enumerate(dataset.queries):
        encrypted = ours.user.encrypt_query(query, K)
        start = time.perf_counter()
        report = ours.server.answer(encrypted, ratio_k=8, ef_search=160)
        compute.append(time.perf_counter() - start)
        network.append(
            NETWORK.latency(encrypted.upload_bytes() + report.download_bytes(), rounds=1)
        )
        recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
    results["PP-ANNS (ours)"] = (
        float(np.mean(recalls)),
        float(np.mean(compute)),
        float(np.mean(network)),
    )

    # --- baselines: measured compute + modelled communication ----------------
    for label, method in (
        ("RS-SANN", lambda q: rs_sann.query_with_cost(q, K)),
        ("PACM-ANN", lambda q: pacm.query_with_cost(q, K, ef_search=60)),
        ("PRI-ANN", lambda q: pri.query_with_cost(q, K)),
    ):
        recalls, compute, network = [], [], []
        for i, query in enumerate(dataset.queries):
            ids, cost = method(query)
            compute.append(cost.server_seconds + cost.user_seconds)
            network.append(cost.network_seconds(NETWORK))
            recalls.append(recall_at_k(ids, truth.for_query(i), K))
        results[label] = (
            float(np.mean(recalls)),
            float(np.mean(compute)),
            float(np.mean(network)),
        )

    ours_recall, ours_compute, _ = results["PP-ANNS (ours)"]
    rows = [
        [
            label,
            recall,
            1.0 / compute_seconds,
            compute_seconds * 1e3,
            network_seconds * 1e3,
            compute_seconds / ours_compute,
        ]
        for label, (recall, compute_seconds, network_seconds) in results.items()
    ]
    print()
    print(
        format_table(
            ["method", "recall@10", "QPS", "compute_ms", "network_ms", "slowdown"],
            rows,
            title=f"Figure 7 — method comparison (n={N}, 20ms RTT / 100Mbit/s model)",
        )
    )

    # Paper shape: ours wins compute throughput by a large factor at
    # comparable recall, and is the only method whose network share is a
    # single tiny round trip.
    baseline_compute = [c for label, (_, c, _) in results.items()
                        if label != "PP-ANNS (ours)"]
    assert all(c > 5 * ours_compute for c in baseline_compute)
    assert ours_recall >= 0.85
    ours_network = results["PP-ANNS (ours)"][2]
    assert all(n >= ours_network for _, (_, _, n) in results.items())

    encrypted = ours.user.encrypt_query(dataset.queries[0], K)
    benchmark(ours.server.answer, encrypted, ratio_k=8, ef_search=160)
