"""Section IV-B / III-C — secure distance comparison micro-benchmark.

The paper's operation-count claims, measured:

* plaintext distance: ``d`` MACs,
* DCE comparison: ``4d + 32`` MACs — ~4x a plaintext distance, O(d),
* AME comparison: ``64 d^2 + 416 d + 676`` MACs — O(d^2),
* HE (Paillier, 1024-bit) comparison — the baseline the paper *excludes*
  "due to significant computational overhead"; we measure it anyway so
  the exclusion is a reproduced fact.

We print the measured wall-clock per comparison and assert the ordering
(plaintext < DCE << AME << HE).
"""

import time

import numpy as np

from repro.baselines.ame import AMEScheme, ame_mac_count
from repro.core.dce import DCEScheme, distance_comp, sdc_mac_count
from repro.crypto.paillier import HEDistanceProtocol, paillier_keygen
from repro.eval.reporting import format_table
from repro.hnsw.distance import distance_mac_count, squared_distance

DIM = 128
REPS = 300


def test_sdc_microbench_report(benchmark):
    rng = np.random.default_rng(91)
    o, p, q = rng.standard_normal((3, DIM)) * 3.0

    dce = DCEScheme(DIM, rng=rng)
    dce_db = dce.encrypt_database(np.stack([o, p]))
    dce_t = dce.trapdoor(q)

    ame = AMEScheme(DIM, rng=rng)
    ame_cts = ame.encrypt_database(np.stack([o, p]))
    ame_t = ame.trapdoor(q)

    def time_op(fn, reps=REPS):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - start) / reps * 1e6

    he = HEDistanceProtocol(
        DIM, keypair=paillier_keygen(1024, rng), rng=rng
    )
    he_cts = [he.encrypt_vector(o), he.encrypt_vector(p)]

    def he_compare():
        # One secure comparison via HE = two encrypted distance terms plus
        # two decryptions (the protocol's decryptor role).
        term_o = he.encrypted_distance_term(he_cts[0], q)
        term_p = he.encrypted_distance_term(he_cts[1], q)
        return he.decrypted_distance(term_o, q) < he.decrypted_distance(term_p, q)

    plain_us = time_op(lambda: squared_distance(o, q))
    dce_us = time_op(lambda: distance_comp(dce_db[0], dce_db[1], dce_t))
    ame_us = time_op(lambda: ame.distance_comp(ame_cts[0], ame_cts[1], ame_t))
    he_us = time_op(he_compare, reps=5)

    print()
    print(
        format_table(
            ["operation", "MACs (formula)", "us / op"],
            [
                ["plaintext distance", distance_mac_count(DIM), plain_us],
                ["DCE DistanceComp", sdc_mac_count(DIM), dce_us],
                ["AME DistanceComp", ame_mac_count(DIM), ame_us],
                ["HE (Paillier-1024)", "modexp-bound", he_us],
            ],
            title=f"SDC micro-benchmark (d={DIM})",
        )
    )
    print(
        f"MAC ratios — DCE/plain: {sdc_mac_count(DIM) / DIM:.2f} (paper: ~4), "
        f"AME/DCE: {ame_mac_count(DIM) / sdc_mac_count(DIM):.0f}, "
        f"measured HE/DCE: {he_us / dce_us:.0f}x"
    )

    assert plain_us <= dce_us < ame_us < he_us
    assert sdc_mac_count(DIM) == 4 * DIM + 32

    benchmark(distance_comp, dce_db[0], dce_db[1], dce_t)
