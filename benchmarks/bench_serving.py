"""Online serving: micro-batched frontend vs one-query-at-a-time answer.

The serving layer's claim (``repro.serve``) is that the server can form
its *own* batches from online traffic and recover the amortization +
fan-out wins that PRs 1-4 gave pre-assembled offline batches.  This
bench drives an **open-loop Poisson arrival workload** — submissions
never wait on answers, the heavy-traffic regime the ROADMAP targets —
through a :class:`~repro.serve.frontend.ServingFrontend`, sweeps the
micro-batch latency window, and compares served throughput against the
sequential baseline that answers each ``EncryptedQuery`` individually
(`CloudServer.answer`, no batching anywhere).

The filter backend is the exact brute-force scan: its distance kernels
release the GIL (so the batch fan-out parallelizes on multi-core
hosts), and its determinism lets the bench assert the served ids are
**bit-identical** to the sequential path for every query — the serving
layer must change scheduling only, never answers.

Writes the machine-readable ``BENCH_serving.json`` next to the repo
root, mirroring ``bench_refine_engines.py`` / ``bench_build.py``.

Acceptance bar: at the reference grid point (``n=4096, d=64, k=10,
ratio_k=8``, window 4 ms, size cap 16) micro-batched throughput must
beat the sequential baseline by ≥2x on ≥4-core hosts.  The bar is
CPU/CI-graded like ``bench_build.py`` / ``bench_refine_engines.py``:
shared CI runners and 1-2 core hosts — where the fan-out has no cores
to use and only the per-batch amortization (minus the admission
overhead) remains — get a sanity floor instead of a speedup bar.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.serve import replay_open_loop

N = 4096
DIM = 64
K = 10
RATIO_K = 8
N_QUERIES = 48
REPEATS = 3
MAX_BATCH = 16

#: The swept micro-batch latency windows (seconds); 0 = no batching.
WINDOW_GRID = (0.0, 0.001, 0.004)

#: The window the ≥2x assertion applies to (with MAX_BATCH as the cap).
ACCEPTANCE_WINDOW = 0.004

#: Open-loop Poisson arrival rate, as a multiple of the sequential
#: baseline's throughput — arrivals outpace a batchless server, so the
#: queue is never starved and the scheduler actually gets to batch.
RATE_MULTIPLIER = 4.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"


def _serving_workload(seed: int = 60):
    """A fitted server plus the individually encrypted online workload."""
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N, DIM)) * 2.0
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0
    owner = DataOwner(DIM, beta=1.0, backend="bruteforce", rng=rng)
    index = owner.build_index(database)
    server = CloudServer(index, default_ratio_k=RATIO_K)
    user = QueryUser(owner.authorize_user(), rng=rng)
    encrypted = [user.encrypt_query(query, K) for query in queries]
    return server, encrypted


def _process_executor_row(index, encrypted, sequential_results, rate, sequential_qps):
    """The acceptance window re-run on the process data plane.

    Records availability honestly: on platforms without shared memory
    the row says so instead of silently skipping, and the ids are still
    asserted bit-identical to the sequential thread oracle whenever the
    plane runs.
    """
    if not process_plane_available():
        return {"available": False}
    server = CloudServer(index, default_ratio_k=RATIO_K, executor="processes")
    try:
        served_seconds, served_results, snapshot = _served_seconds(
            server, encrypted, ACCEPTANCE_WINDOW, rate, seed=62
        )
    finally:
        server.close()
    for sequential_result, served_result in zip(sequential_results, served_results):
        assert np.array_equal(sequential_result.ids, served_result.ids), (
            "process-executor served ids diverged from the sequential oracle"
        )
    served_qps = N_QUERIES / served_seconds
    return {
        "available": True,
        "window_seconds": ACCEPTANCE_WINDOW,
        "served_qps": served_qps,
        "speedup": served_qps / sequential_qps,
        "mean_batch_size": snapshot.mean_batch_size,
    }


def _sequential_seconds(server, encrypted):
    """(best wall clock, per-query results) of the unbatched baseline."""
    results = None
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        results = [server.answer(query) for query in encrypted]
        best = min(best, time.perf_counter() - start)
    return best, results


def _served_seconds(server, encrypted, window, rate, seed):
    """(best wall clock, results, snapshot) of the micro-batched path.

    All three come from the *same* (fastest) repeat, so the JSON row's
    latency/batch columns describe the run whose throughput is
    reported.
    """
    best = float("inf")
    best_results = None
    best_snapshot = None
    for repeat in range(REPEATS):
        frontend = server.serving_frontend(
            max_batch_size=MAX_BATCH,
            batch_window_seconds=window,
            max_queue_depth=max(1024, len(encrypted)),
        )
        with frontend:
            results, elapsed = replay_open_loop(
                frontend, encrypted, rate=rate, seed=seed + repeat
            )
            snapshot = frontend.metrics.snapshot()
        if elapsed < best:
            best, best_results, best_snapshot = elapsed, results, snapshot
    return best, best_results, best_snapshot


def test_serving_window_sweep():
    """Window sweep + JSON artifact + the graded ≥2x throughput bar."""
    server, encrypted = _serving_workload()
    sequential_seconds, sequential_results = _sequential_seconds(server, encrypted)
    sequential_qps = N_QUERIES / sequential_seconds
    rate = RATE_MULTIPLIER * sequential_qps

    windows = []
    speedups = {}
    for window in WINDOW_GRID:
        served_seconds, served_results, snapshot = _served_seconds(
            server, encrypted, window, rate, seed=61
        )
        # The serving layer may change scheduling, never answers.
        for sequential_result, served_result in zip(
            sequential_results, served_results
        ):
            assert np.array_equal(sequential_result.ids, served_result.ids), (
                f"served ids diverged from sequential at window={window}"
            )
        served_qps = N_QUERIES / served_seconds
        speedups[window] = served_qps / sequential_qps
        windows.append(
            {
                "window_seconds": window,
                "served_qps": served_qps,
                "speedup": speedups[window],
                "batches": snapshot.batches,
                "mean_batch_size": snapshot.mean_batch_size,
                "latency_p50": snapshot.latency_p50,
                "latency_p95": snapshot.latency_p95,
                "latency_p99": snapshot.latency_p99,
                "max_queue_depth": snapshot.max_queue_depth,
            }
        )

    process_row = _process_executor_row(
        server.index, encrypted, sequential_results, rate, sequential_qps
    )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "n": N,
                "dim": DIM,
                "k": K,
                "ratio_k": RATIO_K,
                "queries": N_QUERIES,
                "repeats": REPEATS,
                "max_batch_size": MAX_BATCH,
                "rate_multiplier": RATE_MULTIPLIER,
                "filter_engine": server.filter_engine,
                **bench_environment(executor="threads"),
                "sequential_qps": sequential_qps,
                "windows": windows,
                "process_executor": process_row,
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(f"sequential baseline: {sequential_qps:.0f} QPS")
    for row in windows:
        print(
            f"window {row['window_seconds'] * 1e3:5.1f}ms: "
            f"{row['served_qps']:7.0f} QPS ({row['speedup']:.2f}x), "
            f"mean batch {row['mean_batch_size']:.1f}"
        )
    if process_row.get("available"):
        print(
            f"process executor: {process_row['served_qps']:.0f} QPS "
            f"({process_row['speedup']:.2f}x) at the acceptance window"
        )
    print(f"wrote {_RESULT_PATH.name}")

    # Graded like bench_build.py / bench_refine_engines.py: real
    # multi-core hosts must clear the 2x bar; shared CI runners and 1-2
    # core hosts get sanity floors instead — the serving win is
    # parallelism, which a core-starved host cannot express, leaving
    # only per-batch amortization minus the admission overhead (queue
    # hop + future + scheduler handoff per query, a real ~30-40% tax at
    # sub-millisecond query times on a single core).  The floors catch
    # a pathological scheduler, not a missing speedup.
    best = speedups[ACCEPTANCE_WINDOW]
    cores = os.cpu_count() or 1
    if is_graded():
        floor = 2.0
    elif os.environ.get("CI"):
        floor = 0.5
    else:
        floor = 1.1 if cores >= 2 else 0.4
    assert best >= floor, (
        f"micro-batched serving speedup {best:.2f}x below the {floor}x bar "
        f"at window={ACCEPTANCE_WINDOW}s, cap={MAX_BATCH}, n={N}, d={DIM}, "
        f"k={K}, ratio_k={RATIO_K} ({cores} cores)"
    )
    # Re-grade the same bar on the process executor: on a graded host
    # the shared-memory plane must also clear 2x over sequential at the
    # acceptance window (elsewhere the row is recorded ungraded).
    if is_graded() and process_row.get("available"):
        assert process_row["speedup"] >= 2.0, (
            f"process-executor serving speedup {process_row['speedup']:.2f}x "
            f"below the 2.0x bar at window={ACCEPTANCE_WINDOW}s ({cores} cores)"
        )
