"""Batch-vs-loop throughput: the payoff of the batch-first API.

User side: ``QueryUser.encrypt_queries`` computes all DCPE ciphertexts
and DCE trapdoors as matrix-matrix products — one BLAS call per phase —
where the per-query loop performs n independent O(d^2) matrix-vector
products.  Server side: ``CloudServer.answer`` on an
``EncryptedQueryBatch`` amortizes parameter resolution, the key check
and liveness filtering across queries.

The acceptance bar for the API redesign: batched user-side encryption
must beat the n-matvec loop by at least 2x at n=256 queries.
"""

import time

import numpy as np

from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWParams

DIM = 96
N_QUERIES = 256
K = 10


def _best_of(fn, repeats: int = 3) -> float:
    """Min wall-clock over a few repeats (robust against scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_batch_encryption_throughput(benchmark):
    rng = np.random.default_rng(90)
    owner = DataOwner(DIM, beta=1.2, rng=rng)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(91))
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0

    loop_seconds = _best_of(
        lambda: [user.encrypt_query(q, K) for q in queries]
    )
    batch_seconds = _best_of(lambda: user.encrypt_queries(queries, K))
    speedup = loop_seconds / batch_seconds

    print()
    print(
        format_table(
            ["path", "total ms", "us / query", "QPS"],
            [
                ["loop (n matvecs)", loop_seconds * 1e3,
                 loop_seconds / N_QUERIES * 1e6, N_QUERIES / loop_seconds],
                ["batch (matmul)", batch_seconds * 1e3,
                 batch_seconds / N_QUERIES * 1e6, N_QUERIES / batch_seconds],
                ["speedup", "", "", speedup],
            ],
            title=f"user-side encryption, d={DIM}, n={N_QUERIES}",
        )
    )

    # The redesign's acceptance bar.
    assert speedup >= 2.0, f"batch encryption only {speedup:.2f}x over the loop"

    benchmark(user.encrypt_queries, queries, K)


def test_batch_answer_matches_loop_and_amortizes(benchmark):
    rng = np.random.default_rng(92)
    database = rng.standard_normal((1500, 32)) * 2.0
    owner = DataOwner(
        32, beta=0.5, hnsw_params=HNSWParams(m=12, ef_construction=80), rng=rng
    )
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=np.random.default_rng(93))
    queries = rng.standard_normal((64, 32)) * 2.0
    batch = user.encrypt_queries(queries, K, ratio_k=8, ef_search=100)

    loop_seconds = _best_of(
        lambda: [server.answer(batch[i]) for i in range(len(batch))], repeats=2
    )
    batch_seconds = _best_of(lambda: server.answer(batch), repeats=2)

    results = server.answer(batch)
    for i in range(len(batch)):
        assert np.array_equal(results[i].ids, server.answer(batch[i]).ids)

    print()
    print(
        format_table(
            ["path", "total ms", "QPS"],
            [
                ["loop", loop_seconds * 1e3, len(batch) / loop_seconds],
                ["batch", batch_seconds * 1e3, len(batch) / batch_seconds],
                ["ratio", "", loop_seconds / batch_seconds],
            ],
            title=f"server-side answering, n={len(batch)} queries",
        )
    )

    # The batch path amortizes setup, so it must never be slower than the
    # loop by more than measurement noise.
    assert batch_seconds <= loop_seconds * 1.1

    benchmark(server.answer, batch)
