"""Ablation — what each design choice in Section V buys.

Three server-side configurations at matched accuracy targets:

* **DCE linear scan** (no index; Section IV-B's strawman): exact but
  O(n log k) secure comparisons per query.
* **HNSW filter + DCE refine** (the paper's design).
* **NSG filter + DCE refine** (Section V-A's substitutability remark).

The printed table shows why the index exists (orders of magnitude fewer
DCE comparisons) and that the graph backend is swappable.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BETA, BENCH_HNSW, K, N_QUERIES
from repro import PPANNS
from repro.baselines.linear_scan import DCELinearScan
from repro.core.dce import distance_comp
from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.core.dce import DCEScheme
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table
from repro.hnsw.heap import ComparisonMaxHeap
from repro.hnsw.nsg import NSGIndex, NSGParams

N = 800
RATIO = 8
EF = 120


@pytest.fixture(scope="module")
def ablation_setup():
    dataset = make_dataset("deep", num_vectors=N, num_queries=N_QUERIES,
                           rng=np.random.default_rng(111))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    hnsw_scheme = PPANNS(
        dim=dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(112),
    ).fit(dataset.database)
    scan = DCELinearScan(dataset.dim, np.random.default_rng(113)).fit(dataset.database)

    rng = np.random.default_rng(114)
    dcpe = DCPEScheme(dataset.dim, dcpe_keygen(BENCH_BETA["deep"], rng=rng), rng=rng)
    dce = DCEScheme(dataset.dim, rng=rng)
    sap = dcpe.encrypt_database(dataset.database)
    dce_db = dce.encrypt_database(dataset.database)
    nsg = NSGIndex(sap, NSGParams(knn=32, max_degree=16))
    return dataset, truth, hnsw_scheme, scan, (dcpe, dce, sap, dce_db, nsg)


def test_ablation_report(ablation_setup, benchmark):
    dataset, truth, hnsw_scheme, scan, nsg_parts = ablation_setup
    dcpe, dce, _, dce_db, nsg = nsg_parts
    rows = []

    # --- DCE linear scan ----------------------------------------------------
    recalls, latencies, comps = [], [], []
    for i, query in enumerate(dataset.queries):
        start = time.perf_counter()
        report = scan.query_with_report(query, K)
        latencies.append(time.perf_counter() - start)
        recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
        comps.append(report.refine_comparisons)
    rows.append(["DCE linear scan", float(np.mean(recalls)),
                 float(np.mean(latencies)) * 1e3, float(np.mean(comps))])
    scan_ms = rows[-1][2]

    # --- HNSW + DCE (the paper's design) ---------------------------------------
    recalls, latencies, comps = [], [], []
    for i, query in enumerate(dataset.queries):
        encrypted = hnsw_scheme.user.encrypt_query(query, K)
        start = time.perf_counter()
        report = hnsw_scheme.server.answer(encrypted, ratio_k=RATIO, ef_search=EF)
        latencies.append(time.perf_counter() - start)
        recalls.append(recall_at_k(report.ids, truth.for_query(i), K))
        comps.append(report.refine_comparisons)
    rows.append(["HNSW filter + DCE refine", float(np.mean(recalls)),
                 float(np.mean(latencies)) * 1e3, float(np.mean(comps))])
    hnsw_ms = rows[-1][2]

    # --- NSG + DCE (alternative backend) ------------------------------------------
    recalls, latencies, comps = [], [], []
    for i, query in enumerate(dataset.queries):
        sap_query = dcpe.encrypt(query)
        trapdoor = dce.trapdoor(query)
        start = time.perf_counter()
        candidates, _ = nsg.search(sap_query, RATIO * K, ef_search=EF)

        def is_farther(a, b):
            return distance_comp(dce_db[a], dce_db[b], trapdoor) >= 0

        heap = ComparisonMaxHeap(K, is_farther)
        for candidate in candidates:
            heap.offer(int(candidate))
        latencies.append(time.perf_counter() - start)
        recalls.append(recall_at_k(np.array(heap.items()), truth.for_query(i), K))
        comps.append(heap.oracle_calls)
    rows.append(["NSG filter + DCE refine", float(np.mean(recalls)),
                 float(np.mean(latencies)) * 1e3, float(np.mean(comps))])

    print()
    print(
        format_table(
            ["configuration", "recall@10", "latency_ms", "DCE comparisons"],
            rows,
            title=f"Ablation — index design (n={N}, k={K}, Ratio_k={RATIO})",
        )
    )

    # The index is the point: it must cut DCE comparisons by >5x and be
    # faster than the scan; both graph backends must reach high recall.
    assert rows[1][3] < rows[0][3] / 5
    assert hnsw_ms < scan_ms
    assert rows[1][1] >= 0.9
    assert rows[2][1] >= 0.85

    benchmark(scan.query_with_report, dataset.queries[0], K)
