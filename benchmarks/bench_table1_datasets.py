"""Table I — dataset statistics.

Regenerates the paper's dataset table for the synthetic stand-ins: name,
dimensionality, vector count, query count (dimensions match Table I; the
counts are the benchmark scale, see DESIGN.md §5).  The benchmark target
measures generation throughput.
"""

import numpy as np

from benchmarks.conftest import N_QUERIES, N_VECTORS
from repro.datasets import DATASET_PROFILES, make_dataset
from repro.eval.reporting import format_table

PAPER_DIMS = {"sift": 128, "gist": 960, "glove": 100, "deep": 96}


def test_table1_report(benchmark):
    """Print the Table I analogue and benchmark dataset generation."""
    datasets = {
        name: make_dataset(name, num_vectors=N_VECTORS, num_queries=N_QUERIES,
                           rng=np.random.default_rng(11))
        for name in sorted(DATASET_PROFILES)
    }
    rows = [
        [
            name,
            dataset.dim,
            PAPER_DIMS[name],
            dataset.num_vectors,
            dataset.num_queries,
            dataset.max_abs_coordinate,
        ]
        for name, dataset in datasets.items()
    ]
    print()
    print(
        format_table(
            ["dataset", "#dims", "#dims(paper)", "#vectors", "#queries", "max|coord|"],
            rows,
            title="Table I — datasets (scaled stand-ins; paper: 1M vectors each)",
        )
    )

    benchmark(
        make_dataset,
        "deep",
        num_vectors=N_VECTORS,
        num_queries=N_QUERIES,
        rng=np.random.default_rng(12),
    )

    for name, dataset in datasets.items():
        assert dataset.dim == PAPER_DIMS[name]
