"""Figure 8 — per-vector encryption cost: DCPE vs DCE vs AME.

The paper compares the data owner's one-off encryption costs and finds
DCPE cheapest (O(d) scale-and-perturb), DCE in the middle (O(d^2) from
the matrix products), and AME far costlier (32 matrix-vector products in
R^{2d+6}).  We time all three on identical vectors and assert the
ordering.
"""

import time

import numpy as np

from repro.baselines.ame import AMEScheme
from repro.core.dce import DCEScheme
from repro.core.dcpe import DCPEScheme, dcpe_keygen
from repro.eval.reporting import format_table

DIM = 96
N = 300


def test_fig8_report(benchmark):
    rng = np.random.default_rng(81)
    vectors = rng.standard_normal((N, DIM)) * 2.0

    dcpe = DCPEScheme(DIM, dcpe_keygen(1.2, rng=rng), rng=rng)
    dce = DCEScheme(DIM, rng=rng)
    ame = AMEScheme(DIM, rng=rng)

    def time_encryption(fn):
        start = time.perf_counter()
        fn(vectors)
        return (time.perf_counter() - start) / N * 1e6  # us per vector

    dcpe_us = time_encryption(dcpe.encrypt_database)
    dce_us = time_encryption(dce.encrypt_database)
    ame_us = time_encryption(ame.encrypt_database)

    print()
    print(
        format_table(
            ["scheme", "us / vector", "ciphertext floats"],
            [
                ["DCPE", dcpe_us, DIM],
                ["DCE", dce_us, 8 * DIM + 64],
                ["AME", ame_us, 32 * (2 * DIM + 6)],
            ],
            title=f"Figure 8 — vector encryption cost (d={DIM}, n={N})",
        )
    )

    # Paper shape: DCPE < DCE < AME.
    assert dcpe_us < dce_us < ame_us

    benchmark(dce.encrypt, vectors[0])
