"""Figure 6 — HNSW-AME vs HNSW-DCE vs HNSW(filter) latency.

The paper's ablation of the refine phase: all three methods share the
same filter phase (HNSW over DCPE ciphertexts); they differ only in the
secure comparison used to refine.  The paper reports HNSW-DCE at least
100x faster than HNSW-AME (O(d) vs O(d^2) per comparison) and close to
the filter-only lower bound.  We regenerate latency-vs-recall rows for
the three methods and assert the ordering and the ~100x AME gap.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_BETA, BENCH_HNSW, K, N_QUERIES
from repro import PPANNS
from repro.baselines.hnsw_ame import HNSWAMEScheme
from repro.datasets import compute_ground_truth, make_dataset
from repro.eval.metrics import recall_at_k
from repro.eval.reporting import format_table

#: AME trapdoors hold 16 (2d+6)^2 matrices, so keep the fig-6 workload
#: a bit smaller than the session default.
N = 1000
RATIO = 8
EF = 120


@pytest.fixture(scope="module")
def fig6_setup():
    dataset = make_dataset("deep", num_vectors=N, num_queries=N_QUERIES,
                           rng=np.random.default_rng(61))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    dce_scheme = PPANNS(
        dim=dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(62),
    ).fit(dataset.database)
    ame_scheme = HNSWAMEScheme(
        dataset.dim, beta=BENCH_BETA["deep"], hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(62),
    ).fit(dataset.database)
    return dataset, truth, dce_scheme, ame_scheme


def test_fig6_report(fig6_setup, benchmark):
    dataset, truth, dce_scheme, ame_scheme = fig6_setup

    def run(label, fn):
        recalls, latencies = [], []
        for i, query in enumerate(dataset.queries):
            start = time.perf_counter()
            ids = fn(query)
            latencies.append(time.perf_counter() - start)
            recalls.append(recall_at_k(ids, truth.for_query(i), K))
        return [label, float(np.mean(recalls)), float(np.mean(latencies)) * 1e3]

    rows = [
        run(
            "HNSW(filter)",
            lambda q: dce_scheme.query_filter_only(q, K, ef_search=EF).ids,
        ),
        run(
            "HNSW-DCE (ours)",
            lambda q: dce_scheme.query_with_report(q, K, ratio_k=RATIO, ef_search=EF).ids,
        ),
        run(
            "HNSW-AME",
            lambda q: ame_scheme.query_with_report(q, K, ratio_k=RATIO, ef_search=EF).ids,
        ),
    ]
    print()
    print(
        format_table(
            ["method", "recall@10", "latency_ms"],
            rows,
            title=f"Figure 6 — refine-phase ablation (Ratio_k={RATIO}, ef={EF})",
        )
    )

    filter_ms, dce_ms, ame_ms = rows[0][2], rows[1][2], rows[2][2]
    speedup = ame_ms / dce_ms
    print(f"HNSW-DCE vs HNSW-AME speedup: {speedup:.0f}x (paper: >= 100x at d>=96)")

    # Paper shape: filter <= DCE << AME; DCE/AME gap at least ~20x even at
    # this scale, and DCE within a small multiple of filter-only.
    assert dce_ms < ame_ms
    assert speedup > 10
    assert dce_ms < 6 * filter_ms

    # Micro-benchmark the DCE-refined query (the paper's headline method).
    encrypted = dce_scheme.user.encrypt_query(dataset.queries[0], K)
    benchmark(dce_scheme.server.answer, encrypted, ratio_k=RATIO, ef_search=EF)
