"""Shared benchmark fixtures.

Benchmarks regenerate the paper's Section VII tables and figures on
scaled-down synthetic stand-ins (see DESIGN.md §5).  Index builds are the
expensive part, so each workload/scheme is session-scoped and read-only.

Scale knobs live here: raising N_VECTORS / N_QUERIES tightens the curves
at the cost of wall-clock time.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PPANNS
from repro.datasets import compute_ground_truth, make_dataset
from repro.hnsw.graph import HNSWParams

#: Benchmark scale (the paper used 1M vectors / 1k-10k queries).
N_VECTORS = 1500
N_QUERIES = 10
K = 10

#: Graph parameters: paper uses m=40, efC=600 at million scale; these are
#: the equivalent sweet spot at benchmark scale.
BENCH_HNSW = HNSWParams(m=12, ef_construction=80)

#: Per-profile DCPE beta chosen by the Section VII-A rule (filter-only
#: recall ceiling ~0.5) at this scale — the analogue of the paper's
#: beta = 450 / 2.5 / 5 / 1.1 for Sift1M / Gist / Glove / Deep1M.
BENCH_BETA = {"sift": 60.0, "gist": 1.2, "glove": 5.0, "deep": 1.2}


@pytest.fixture(scope="session")
def deep_workload():
    """Deep1M stand-in (d=96) — the default benchmark substrate."""
    dataset = make_dataset("deep", num_vectors=N_VECTORS, num_queries=N_QUERIES,
                           rng=np.random.default_rng(1))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    return dataset, truth


@pytest.fixture(scope="session")
def sift_workload():
    """Sift1M stand-in (d=128)."""
    dataset = make_dataset("sift", num_vectors=N_VECTORS, num_queries=N_QUERIES,
                           rng=np.random.default_rng(2))
    truth = compute_ground_truth(dataset.database, dataset.queries, K)
    return dataset, truth


@pytest.fixture(scope="session")
def deep_scheme(deep_workload):
    """A fitted PP-ANNS scheme on the deep stand-in at the tuned beta."""
    dataset, _ = deep_workload
    scheme = PPANNS(
        dim=dataset.dim,
        beta=BENCH_BETA["deep"],
        hnsw_params=BENCH_HNSW,
        rng=np.random.default_rng(3),
    )
    return scheme.fit(dataset.database)
