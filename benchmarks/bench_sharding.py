"""Scatter-gather sharding: filter-phase scaling vs. shard count.

The sharding subsystem (``repro.core.sharding``) partitions the filter
structures across N shards and fans each query out over a thread pool;
numpy's distance kernels release the GIL, so on a multi-core host the
per-shard scans overlap and the filter phase's wall clock drops toward
``1/min(N, cores)`` of the monolithic scan.  The refine phase is
untouched (``C_DCE`` stays global), so this sweep isolates and reports
the *filter* wall clock.

Two acceptance bars:

* brute-force sharded top-k is **bit-identical** to the monolithic index
  at every shard count (the gather merge is lossless for an exact
  filter);
* on a multi-core host, ≥2 shards beat the monolithic filter wall clock
  (single-core hosts run the scatter concurrently but not in parallel,
  so the assert is gated on ``os.cpu_count()``).
"""

import os

import numpy as np

from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.eval.reporting import format_table
from repro.hnsw.graph import HNSWParams

N_VECTORS = 6000
DIM = 64
N_QUERIES = 32
K = 10
SHARD_GRID = (1, 2, 4)
BENCH_HNSW = HNSWParams(m=12, ef_construction=80)


def _workload(seed: int = 40):
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N_VECTORS, DIM)) * 2.0
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0
    return database, queries


def _servers(database, backend, shard_grid, seed=41):
    """One server per shard count, all over identical ciphertexts."""
    servers = {}
    user = None
    for shards in shard_grid:
        owner = DataOwner(
            DIM,
            beta=1.0,
            hnsw_params=BENCH_HNSW,
            backend=backend,
            shards=shards,
            rng=np.random.default_rng(seed),
        )
        servers[shards] = CloudServer(owner.build_index(database))
        if user is None:
            user = QueryUser(owner.authorize_user(),
                             rng=np.random.default_rng(seed + 1))
    return servers, user


def _best_filter_seconds(server, batch, repeats: int = 3) -> float:
    """Min total filter wall clock over a few repeats."""
    best = float("inf")
    for _ in range(repeats):
        results = server.answer(batch)
        best = min(best, results.filter_seconds)
    return best


def test_bruteforce_sharded_topk_bit_identical():
    """The gather merge is lossless: exact filter => exact invariance."""
    database, queries = _workload()
    servers, user = _servers(database, "bruteforce", SHARD_GRID)
    batch = user.encrypt_queries(queries, K, ratio_k=4)
    reference = servers[SHARD_GRID[0]].answer(batch).ids_matrix()
    for shards in SHARD_GRID[1:]:
        ids = servers[shards].answer(batch).ids_matrix()
        assert np.array_equal(reference, ids), (
            f"sharded top-k diverged from monolithic at shards={shards}"
        )


def test_filter_phase_scaling_sweep():
    """Filter wall clock vs. shard count, brute-force and HNSW."""
    database, queries = _workload()
    rows = []
    speedups = {}
    for backend in ("bruteforce", "hnsw"):
        servers, user = _servers(database, backend, SHARD_GRID)
        batch = user.encrypt_queries(queries, K, ratio_k=4, ef_search=100)
        baseline = None
        for shards in SHARD_GRID:
            seconds = _best_filter_seconds(servers[shards], batch)
            if baseline is None:
                baseline = seconds
            speedup = baseline / seconds if seconds > 0 else float("inf")
            speedups[(backend, shards)] = speedup
            per_shard = servers[shards].answer(batch).shard_seconds()
            rows.append([
                backend,
                shards,
                seconds * 1e3,
                seconds / N_QUERIES * 1e6,
                speedup,
                max(per_shard.values()) * 1e3 if per_shard else float("nan"),
            ])

    print()
    print(
        format_table(
            ["backend", "shards", "filter ms", "us / query",
             "speedup", "slowest shard ms"],
            rows,
            title=(
                f"scatter-gather filter phase, n={N_VECTORS}, d={DIM}, "
                f"q={N_QUERIES}, cores={os.cpu_count()}"
            ),
        )
    )

    # On a multi-core host the parallel scatter must pay for itself;
    # single-core hosts interleave the shards, so only check there that
    # the overhead stays bounded rather than demanding a speedup.
    cores = os.cpu_count() or 1
    best = max(speedups[("bruteforce", shards)] for shards in SHARD_GRID[1:])
    if cores >= 2:
        assert best >= 1.1, (
            f"no filter-phase speedup from sharding on a {cores}-core host "
            f"(best {best:.2f}x)"
        )
    else:
        assert best >= 0.25, (
            f"sharding overhead out of bounds on a single core ({best:.2f}x)"
        )
