"""Chaos bench: goodput and recovery under an injected fault schedule.

The resilience claim, end to end: with the *whole* stack assembled —
process data plane, batch scheduler, tenancy, TCP serving, retrying
client — three faults land mid-run:

* a **worker kill** (the plane's only worker dies right before a filter
  batch and must be respawned in place),
* a **connection drop** (the healthy tenant's socket is torn mid-query
  by a :class:`~repro.testing.faults.FaultySocket`; the client
  reconnects and retries), and
* a **tenant flood** (a second tenant hammers past its token-bucket
  rate and must be shed with typed refusals).

The bars are correctness bars, not speed bars, so they are *not*
CPU-graded: every healthy query is eventually answered with ids
**bit-identical** to the fault-free oracle (zero wrong results), every
faulted attempt fails **typed** within the call budget (no hangs), and
the plane's recovery is observable and bounded.  Goodput and the
per-fault recovery time are recorded in ``BENCH_chaos.json``; the
environment stamp still says whether the host was core-starved.
"""

import json
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment
from repro.core.plane import process_plane_available
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net import (
    NetClient,
    NetServer,
    QuotaExceededError,
    RemoteError,
    TenantConfig,
)
from repro.serve import DeadlineExceededError
from repro.testing import CallTrigger, FaultySocket
import socket as socket_module

N = 1024
DIM = 16
K = 10
N_QUERIES = 32
DEADLINE_MS = 30_000
PER_QUERY_BUDGET = 60.0  # hard wall for answer-or-typed-failure, seconds
FLOOD_RATE = 20.0  # tokens/second for the flooding tenant
FLOOD_BURST = 4.0

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_chaos.json"


def _workload(seed: int = 75):
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N, DIM)) * 2.0
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0
    owner = DataOwner(DIM, beta=1.0, backend="bruteforce", rng=rng)
    index = owner.build_index(database)
    user = QueryUser(owner.authorize_user(), rng=rng)
    return index, user, queries


def test_chaos_goodput_and_recovery():
    index, user, plain_queries = _workload()
    key_a = int(index.dce_database.key_id)
    encrypted = [user.encrypt_query(query, K) for query in plain_queries]

    # Fault-free oracle: the same ciphertexts through in-process serving.
    oracle = CloudServer(index)
    expected = [oracle.answer(query).ids for query in encrypted]

    # The flooding tenant holds its own DCE key and sends filter_only
    # traffic (answerable under a foreign key), rate-limited hard.
    owner_b = DataOwner(DIM, beta=1.0, rng=np.random.default_rng(85))
    user_b = QueryUser(owner_b.authorize_user(), rng=np.random.default_rng(86))
    key_b = int(owner_b.authorize_user().dce_key.key_id)
    flood_queries = [
        user_b.encrypt_query(query, K, mode="filter_only")
        for query in plain_queries
    ]
    tenants = [
        TenantConfig(key_a),
        TenantConfig(key_b, rate=FLOOD_RATE, burst=FLOOD_BURST),
    ]

    use_processes = process_plane_available()
    faults = ["connection_drop", "tenant_flood"] + (
        ["worker_kill"] if use_processes else []
    )
    server = (
        CloudServer(index, executor="processes", workers=1)
        if use_processes
        else CloudServer(index)
    )

    typed_failures: Counter = Counter()
    flood_refusals = 0
    flood_completed = 0
    wrong = 0
    recovery_seconds = 0.0
    # First moment *anyone* (either tenant) saw the plane fault typed;
    # recovery is measured to the next healthy success after it.
    plane_fault_at = [None]
    plane_faults = [0]

    def _saw_plane_fault():
        plane_faults[0] += 1
        if plane_fault_at[0] is None:
            plane_fault_at[0] = time.monotonic()

    with server:
        with server.serving_frontend(
            max_batch_size=8, batch_window_seconds=0.002
        ) as frontend:
            with NetServer(frontend, tenants) as net:
                host, port = net.address

                # ---- fault 1: tenant flood from a background thread ----
                stop_flood = threading.Event()

                def flood():
                    nonlocal flood_refusals, flood_completed
                    with NetClient(host, port, key_b) as client:
                        i = 0
                        while not stop_flood.is_set():
                            try:
                                client.answer(
                                    flood_queries[i % N_QUERIES], timeout=30
                                )
                                flood_completed += 1
                            except QuotaExceededError:
                                flood_refusals += 1
                                time.sleep(0.01)
                            except RemoteError:
                                _saw_plane_fault()
                                time.sleep(0.01)
                            i += 1

                flooder = threading.Thread(target=flood, daemon=True)
                flooder.start()

                # ---- fault 2: the healthy tenant's first connection is
                # torn at its 4th query frame; the client must reconnect
                # and retry.  Only this one dial gets the faulty wrapper.
                real_create = socket_module.create_connection

                def faulty_dial(address, timeout=None):
                    sock = real_create(address, timeout=timeout)
                    socket_module.create_connection = real_create
                    return FaultySocket(sock, CallTrigger(5), action="close")

                socket_module.create_connection = faulty_dial
                try:
                    client = NetClient(
                        host,
                        port,
                        key_a,
                        retries=5,
                        backoff_base=0.05,
                        backoff_cap=0.5,
                    )
                finally:
                    socket_module.create_connection = real_create

                try:
                    # ---- fault 3: kill the plane's only worker right
                    # before the 6th healthy-side filter batch.
                    kill_trigger = CallTrigger(6)
                    if use_processes:
                        plane = server.data_plane()
                        from repro.testing import arm_plane_worker_kill

                        arm_plane_worker_kill(plane, 0, kill_trigger)

                    start = time.perf_counter()
                    answered = 0
                    for i, query in enumerate(encrypted):
                        query_start = time.monotonic()
                        while True:
                            attempt_start = time.monotonic()
                            try:
                                result = client.answer(
                                    query,
                                    timeout=30,
                                    deadline_ms=DEADLINE_MS,
                                )
                            except (
                                RemoteError,
                                DeadlineExceededError,
                                QuotaExceededError,
                            ) as exc:
                                # Typed, and within the call budget —
                                # never a hang.
                                assert (
                                    time.monotonic() - attempt_start < 35
                                ), f"query {i} attempt hung: {exc}"
                                typed_failures[type(exc).__name__] += 1
                                if isinstance(exc, RemoteError):
                                    _saw_plane_fault()
                                assert (
                                    time.monotonic() - query_start
                                    < PER_QUERY_BUDGET
                                ), f"query {i} never recovered: {exc}"
                                time.sleep(0.05)
                                continue
                            if (
                                plane_fault_at[0] is not None
                                and recovery_seconds == 0.0
                            ):
                                recovery_seconds = (
                                    time.monotonic() - plane_fault_at[0]
                                )
                            break
                        answered += 1
                        if not np.array_equal(result.ids, expected[i]):
                            wrong += 1
                    elapsed = time.perf_counter() - start
                finally:
                    stop_flood.set()
                    flooder.join(timeout=60)
                    client.close()

                health = server.data_plane().health() if use_processes else None
                metrics = frontend.metrics.snapshot()

    goodput = answered / elapsed if elapsed > 0 else 0.0
    payload = {
        "n": N,
        "dim": DIM,
        "k": K,
        "queries": N_QUERIES,
        **bench_environment(
            executor="processes" if use_processes else "threads"
        ),
        "faults": faults,
        "goodput_qps": goodput,
        "answered": answered,
        "wrong_results": wrong,
        "typed_failures": dict(typed_failures),
        "plane_faults_observed": plane_faults[0],
        "recovery_seconds": recovery_seconds,
        "client_retries": client.retry_count,
        "flood": {
            "rate": FLOOD_RATE,
            "burst": FLOOD_BURST,
            "refused": flood_refusals,
            "completed": flood_completed,
        },
        "server": {
            "rate_limited": metrics.rate_limited,
            "deadline_sheds": metrics.deadline_sheds,
        },
        "plane_restarts": (
            health["workers"][0]["restarts"] if health else None
        ),
        "kill_trigger": {
            "calls": kill_trigger.calls,
            "fired": kill_trigger.fired,
        },
    }
    _RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    print()
    print(
        f"chaos: {answered}/{N_QUERIES} healthy queries answered "
        f"({goodput:.1f} QPS goodput), {wrong} wrong, "
        f"typed failures {dict(typed_failures) or '{}'}"
    )
    print(
        f"recovery {recovery_seconds * 1e3:.0f}ms; client retried "
        f"{client.retry_count}x; flood refused {flood_refusals} / "
        f"completed {flood_completed}; faults: {', '.join(faults)}"
    )
    print(f"wrote {_RESULT_PATH.name}")

    # Zero wrong results: every healthy answer bit-identical to the
    # fault-free oracle.
    assert wrong == 0, f"{wrong} healthy queries returned wrong ids"
    assert answered == N_QUERIES
    # The connection drop really happened and was really retried.
    assert client.retry_count >= 1, "the dropped connection was never retried"
    # The flood was really shed by the token bucket.
    assert flood_refusals > 0, "the flooding tenant was never rate-limited"
    assert metrics.rate_limited >= flood_refusals
    # The worker kill really happened (someone saw it fail typed) and
    # the plane really healed in place within the budget.
    if use_processes:
        assert plane_faults[0] >= 1, (
            "the worker kill produced no typed plane failures"
        )
        assert payload["plane_restarts"] >= 1
        assert recovery_seconds > 0.0
        assert recovery_seconds < PER_QUERY_BUDGET
