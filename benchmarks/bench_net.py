"""Loopback network serving: socket parity + per-tenant quota isolation.

Two claims of the ``repro.net`` layer (PR 6), each phase one claim:

**Phase 1 — wire parity.**  An open-loop Poisson workload replayed
through the real socket path (codec -> TCP -> tenancy -> frontend) must
return ids **bit-identical** to replaying the same ciphertexts through
the in-process :class:`~repro.serve.frontend.ServingFrontend`.  The
queries are canonicalized through one codec round trip first (DCPE
ciphertexts travel as float32; encode∘decode is idempotent after the
first pass), so both paths serve exactly the same float values and the
assertion is equality, not tolerance.

**Phase 2 — quota isolation.**  Two tenants share one scheduler:
tenant A floods under a tiny in-flight quota and must be throttled
(observable :class:`~repro.net.tenancy.QuotaExceededError` rejections),
while tenant B's served p95 latency in the mixed run must stay within
2x of its solo run — a noisy tenant sheds its own load instead of
starving its neighbors.  Tenant B holds its *own* DCE key and submits
``filter_only`` traffic (answerable under a foreign DCE key: the refine
phase — where the key is checked — is skipped), which is what makes a
genuinely two-key bench possible over a single index.

The p95 bar is CPU/CI-graded like every bench in this repo: the 2x
bound applies on ≥4-core hosts; shared CI runners and 1-2 core hosts
get a sanity factor instead (one core serializes A's and B's work, so
B pays A's compute tax regardless of admission policy).

Writes ``BENCH_net.json`` next to the repo root.
"""

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.grading import bench_environment, is_graded
from repro.core.protocol import EncryptedQueryBatch
from repro.core.roles import CloudServer, DataOwner, QueryUser
from repro.net import NetClient, NetServer, QuotaExceededError, TenantConfig
from repro.net import codec
from repro.serve import replay_open_loop

N = 2048
DIM = 32
K = 10
N_QUERIES = 48
RATE = 400.0  # Poisson arrivals (queries/second) for both phases
FLOOD_SUBMISSIONS = 150
FLOOD_QUOTA = 2

_RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_net.json"


def _workload(seed: int = 70):
    rng = np.random.default_rng(seed)
    database = rng.standard_normal((N, DIM)) * 2.0
    queries = rng.standard_normal((N_QUERIES, DIM)) * 2.0
    owner = DataOwner(DIM, beta=1.0, backend="bruteforce", rng=rng)
    index = owner.build_index(database)
    server = CloudServer(index)
    user = QueryUser(owner.authorize_user(), rng=rng)
    return server, user, queries, int(index.dce_database.key_id)


def _canonical(queries):
    """One codec round trip per query: both serving paths see the same
    float32-quantized ciphertexts, making id parity exact by construction."""
    canonical = []
    for query in queries:
        batch = EncryptedQueryBatch.from_queries([query])
        decoded = codec.decode_query_batch(codec.encode_query_batch(batch))
        canonical.append(decoded[0])
    return canonical


def test_socket_parity_and_quota_isolation():
    server, user, plain_queries, key_a = _workload()
    encrypted = _canonical(
        [user.encrypt_query(query, K) for query in plain_queries]
    )

    # ---- Phase 1: socket path vs in-process path, bit-identical ids ----
    with server.serving_frontend(
        max_batch_size=16, batch_window_seconds=0.002
    ) as frontend:
        inproc_results, inproc_elapsed = replay_open_loop(
            frontend, encrypted, rate=RATE, seed=71
        )
    with server.serving_frontend(
        max_batch_size=16, batch_window_seconds=0.002
    ) as frontend:
        with NetServer(frontend, [TenantConfig(key_a)]) as net:
            host, port = net.address
            with NetClient(host, port, key_a) as client:
                socket_results, socket_elapsed = replay_open_loop(
                    client, encrypted, rate=RATE, seed=71
                )
    assert len(socket_results) == len(inproc_results) == N_QUERIES
    for inproc, socked in zip(inproc_results, socket_results):
        assert np.array_equal(inproc.ids, socked.ids), (
            "socket-served ids diverged from in-process serving"
        )
    parity = {
        "queries": N_QUERIES,
        "rate": RATE,
        "inprocess_qps": N_QUERIES / inproc_elapsed,
        "socket_qps": N_QUERIES / socket_elapsed,
        "ids_bit_identical": True,
    }

    # ---- Phase 2: tenant A throttled, tenant B's p95 within bounds ----
    owner_b = DataOwner(DIM, beta=1.0, rng=np.random.default_rng(81))
    user_b = QueryUser(owner_b.authorize_user(), rng=np.random.default_rng(82))
    key_b = int(owner_b.authorize_user().dce_key.key_id)
    queries_b = [
        user_b.encrypt_query(query, K, mode="filter_only")
        for query in plain_queries
    ]
    tenants = [
        TenantConfig(key_a, max_in_flight=FLOOD_QUOTA),
        TenantConfig(key_b),
    ]

    def _run_b(net, rate_seed):
        host, port = net.address
        with NetClient(host, port, key_b) as client:
            results, elapsed = replay_open_loop(
                client, queries_b, rate=RATE, seed=rate_seed
            )
        assert len(results) == N_QUERIES
        return net.registry.get(key_b).stats()

    # Solo run: tenant B alone on a fresh frontend + registry.
    with server.serving_frontend(
        max_batch_size=16, batch_window_seconds=0.002
    ) as frontend:
        with NetServer(frontend, tenants) as net:
            solo = _run_b(net, rate_seed=91)

    # Mixed run: tenant A floods its 2-slot quota from another thread
    # while tenant B replays the identical workload.
    rejections = 0
    completions_a = 0
    with server.serving_frontend(
        max_batch_size=16, batch_window_seconds=0.002
    ) as frontend:
        with NetServer(frontend, tenants) as net:
            host, port = net.address
            stop_flood = threading.Event()

            def flood():
                nonlocal rejections, completions_a
                with NetClient(host, port, key_a) as client:
                    futures = []
                    for i in range(FLOOD_SUBMISSIONS):
                        if stop_flood.is_set():
                            break
                        futures.append(client.submit(encrypted[i % N_QUERIES]))
                        time.sleep(0.001)
                    for future in futures:
                        try:
                            future.result(timeout=60)
                            completions_a += 1
                        except QuotaExceededError:
                            rejections += 1

            flooder = threading.Thread(target=flood, daemon=True)
            flooder.start()
            try:
                mixed = _run_b(net, rate_seed=91)
            finally:
                stop_flood.set()
                flooder.join(timeout=120)
            tenant_a = net.registry.get(key_a).stats()

    p95_ratio = (
        mixed["latency_p95"] / solo["latency_p95"]
        if solo["latency_p95"] > 0
        else float("inf")
    )

    _RESULT_PATH.write_text(
        json.dumps(
            {
                "n": N,
                "dim": DIM,
                "k": K,
                **bench_environment(executor="threads"),
                "parity": parity,
                "quota": {
                    "flood_quota": FLOOD_QUOTA,
                    "flood_submissions": FLOOD_SUBMISSIONS,
                    "tenant_a_rejected": rejections,
                    "tenant_a_completed": completions_a,
                    "tenant_b_solo_p95": solo["latency_p95"],
                    "tenant_b_mixed_p95": mixed["latency_p95"],
                    "p95_ratio": p95_ratio,
                },
            },
            indent=2,
        )
        + "\n"
    )

    print()
    print(
        f"parity: {parity['socket_qps']:.0f} QPS over the socket vs "
        f"{parity['inprocess_qps']:.0f} QPS in-process, ids bit-identical"
    )
    print(
        f"quota: tenant A {rejections} rejected / {completions_a} completed "
        f"under quota {FLOOD_QUOTA}; tenant B p95 "
        f"{solo['latency_p95'] * 1e3:.2f}ms solo -> "
        f"{mixed['latency_p95'] * 1e3:.2f}ms mixed ({p95_ratio:.2f}x)"
    )
    print(f"wrote {_RESULT_PATH.name}")

    # The noisy tenant was actually throttled...
    assert rejections > 0, (
        f"tenant A was never throttled under quota {FLOOD_QUOTA} "
        f"({completions_a} completions)"
    )
    assert tenant_a["rejected"] == rejections
    # ...and its neighbor kept its latency.  CPU-graded: the 2x bound
    # needs cores for A's admitted work to run on; a core-starved host
    # serializes both tenants and only gets a sanity factor.
    cores = os.cpu_count() or 1
    bound = 2.0 if is_graded() else 10.0
    assert p95_ratio <= bound, (
        f"tenant B's mixed p95 is {p95_ratio:.2f}x its solo run "
        f"(bound {bound}x on {cores} cores)"
    )
