"""Setuptools shim.

The offline environment lacks the ``wheel`` package needed for PEP-660
editable installs, so this legacy ``setup.py`` keeps ``pip install -e .``
working; all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
